"""Trace characterization: the Section IV figures' data."""

from repro.analysis.attributes import AttributeMap, attribute_map
from repro.analysis.characterize import (
    build_timeline,
    classify_shared_pages,
    page_interval_profile,
    sharing_summary,
)

__all__ = [
    "AttributeMap",
    "attribute_map",
    "build_timeline",
    "classify_shared_pages",
    "page_interval_profile",
    "sharing_summary",
]

"""Time-resolved scheme occupancy from a simulation event log.

Figure 19 reports GRIT's scheme usage aggregated over a whole run; this
module resolves it over time — how many pages carried each scheme's PTE
bits as the run progressed — by replaying SCHEME_CHANGE events from an
attached :class:`~repro.stats.events.EventLog`.  Useful for watching
GRIT converge (on-touch melting into duplication/counter modes) and for
spotting scheme ping-pong.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.constants import Scheme
from repro.stats.events import EventKind, EventLog


@dataclasses.dataclass(frozen=True)
class SchemeOccupancy:
    """Scheme population after the i-th scheme-change event."""

    event_index: int
    counts: Dict[Scheme, int]

    def fraction(self, scheme: Scheme) -> float:
        """Share of the dynamic page population using the scheme."""
        total = sum(self.counts.values())
        return self.counts[scheme] / total if total else 0.0


def scheme_occupancy_timeline(
    log: EventLog,
    initial_scheme: Scheme = Scheme.ON_TOUCH,
    samples: int = 20,
) -> List[SchemeOccupancy]:
    """Replay scheme changes and sample the page-scheme population.

    Pages enter the population at their first scheme-change event (with
    ``initial_scheme`` before it); pages that never change scheme never
    appear, so the timeline shows the *dynamic* subset — the pages GRIT
    actually acted on.
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    changes = log.filter(kind=EventKind.SCHEME_CHANGE)
    if not changes:
        return []
    page_scheme: Dict[int, Scheme] = {}
    counts = {scheme: 0 for scheme in Scheme}
    timeline: List[SchemeOccupancy] = []
    stride = max(1, len(changes) // samples)
    for index, event in enumerate(changes):
        new_scheme = Scheme(event.detail)
        previous = page_scheme.get(event.vpn)
        if previous is None:
            counts[initial_scheme] += 1
            previous = initial_scheme
        counts[previous] -= 1
        counts[new_scheme] += 1
        page_scheme[event.vpn] = new_scheme
        if index % stride == 0 or index == len(changes) - 1:
            timeline.append(
                SchemeOccupancy(event_index=index, counts=dict(counts))
            )
    return timeline


def flip_counts(log: EventLog) -> Dict[int, int]:
    """Scheme changes per page — large values reveal ping-pong pages."""
    tallies: Dict[int, int] = {}
    for event in log.filter(kind=EventKind.SCHEME_CHANGE):
        tallies[event.vpn] = tallies.get(event.vpn, 0) + 1
    return tallies

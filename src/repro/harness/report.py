"""Plain-text rendering of regenerated figures."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.figures import FigureData


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Dict[str, List[object]], row_header: str = ""
) -> str:
    """Render an aligned text table."""
    header = [row_header, *columns]
    body = [
        [label, *(_format_cell(value) for value in values)]
        for label, values in rows.items()
    ]
    widths = [
        max(len(line[i]) for line in [header, *body])
        for i in range(len(header))
    ]
    lines = []
    lines.append(
        "  ".join(cell.ljust(width) for cell, width in zip(header, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(lines)


def format_figure(figure: FigureData) -> str:
    """Render one regenerated figure with its paper reference."""
    parts = [f"== {figure.name}: {figure.title} =="]
    parts.append(format_table(figure.columns, figure.rows))
    if figure.notes:
        parts.append(f"note: {figure.notes}")
    if figure.paper:
        parts.append(f"paper: {figure.paper}")
    return "\n".join(parts)

"""Whole-evaluation reproduction report generator.

Runs every registered figure and writes one markdown report with the
regenerated tables next to the paper's claims — the file a reviewer
would read to judge the reproduction.  Used by ``python -m repro
report`` and importable for notebooks.
"""

from __future__ import annotations

import os
import time
from typing import Iterable

from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import FIGURES, FigureData, run_figure
from repro.harness.report import format_table


def _figure_markdown(figure: FigureData, chart_path: str | None) -> str:
    lines = [f"## {figure.name}: {figure.title}", ""]
    if chart_path is not None:
        lines.append(f"![{figure.name}]({chart_path})")
        lines.append("")
    lines.append("```")
    lines.append(format_table(figure.columns, figure.rows))
    lines.append("```")
    if figure.notes:
        lines.append(f"\n*Note:* {figure.notes}")
    if figure.paper:
        lines.append(f"\n*Paper:* {figure.paper}")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    scale: float = 0.25,
    figures: Iterable[str] | None = None,
    runner: ExperimentRunner | None = None,
    charts_dir: str | os.PathLike | None = None,
    workers: int = 1,
) -> str:
    """Regenerate figures and return the markdown report text.

    When ``charts_dir`` is given, an SVG bar chart is written there for
    every figure with numeric cells, and the report embeds it.  With
    ``workers > 1`` the runs the figures share are pre-warmed through
    the resilient sweep orchestrator before the (sequential) figure
    functions consume them from cache.
    """
    runner = runner or ExperimentRunner(scale=scale)
    names = sorted(figures) if figures is not None else sorted(FIGURES)
    if workers > 1:
        _prewarm(runner, workers)
    started = time.time()
    if charts_dir is not None:
        os.makedirs(charts_dir, exist_ok=True)
    sections = []
    for name in names:
        figure = run_figure(name, runner)
        chart_path = None
        if charts_dir is not None:
            chart_path = _maybe_write_chart(figure, charts_dir)
        sections.append(_figure_markdown(figure, chart_path))
    elapsed = time.time() - started
    dropped = runner.dropped_event_total()
    header = "\n".join(
        [
            "# GRIT reproduction report",
            "",
            "Regenerated evaluation tables for *GRIT: Enhancing Multi-GPU "
            "Performance with Fine-Grained Dynamic Page Placement* "
            "(HPCA 2024).",
            "",
            f"- trace scale: {runner.scale}",
            f"- figures: {len(names)}",
            f"- generation time: {elapsed:.0f}s",
            *(
                [
                    f"- **warning:** event logs saturated; {dropped} "
                    f"events dropped (observability data is truncated)"
                ]
                if dropped
                else []
            ),
            "",
            "See EXPERIMENTS.md for the paper-vs-measured comparison and "
            "documented deviations.",
            "",
        ]
    )
    return header + "\n" + "\n".join(sections)


def _prewarm(runner: ExperimentRunner, workers: int) -> None:
    """Populate the runner's cache via the sweep orchestrator."""
    from repro.harness.figures import warmup_keys
    from repro.harness.orchestrator import run_sweep

    summary = run_sweep(
        warmup_keys(runner),
        base_config=runner.base_config,
        workers=workers,
        cache_dir=getattr(runner, "cache_dir", None),
        artifacts_dir=runner.artifacts_dir,
    )
    # Failed keys (if any) fall back to inline simulation when a
    # figure asks for them; pre-warming is best-effort.
    runner._cache.update(summary.results)


def _maybe_write_chart(
    figure: FigureData, charts_dir: str | os.PathLike
) -> str | None:
    """Write the figure's SVG; returns its path, or None if non-numeric."""
    from repro.harness.charts import save_svg

    path = os.path.join(str(charts_dir), f"{figure.name}.svg")
    try:
        save_svg(figure, path)
    except ValueError:
        return None
    return path


def write_report(
    path: str | os.PathLike,
    scale: float = 0.25,
    figures: Iterable[str] | None = None,
    charts_dir: str | os.PathLike | None = None,
    workers: int = 1,
) -> str:
    """Generate the report and write it to ``path``; returns the text."""
    text = generate_report(
        scale=scale,
        figures=figures,
        charts_dir=charts_dir,
        workers=workers,
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text

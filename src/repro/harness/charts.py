"""Dependency-free SVG bar charts for regenerated figures.

matplotlib is not part of this library's footprint, so reports render
their own SVG: grouped vertical bars, one group per figure row, one bar
per column — the same visual grammar as the paper's evaluation figures.
Only numeric cells are plotted; rows/columns with non-numeric cells are
skipped.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence, Tuple

from repro.harness.figures import FigureData

#: Flat, print-safe fill colors cycled across columns.
PALETTE = (
    "#4878d0",
    "#ee854a",
    "#6acc64",
    "#d65f5f",
    "#956cb4",
    "#8c613c",
    "#dc7ec0",
    "#797979",
)

_MARGIN_LEFT = 60
_MARGIN_BOTTOM = 70
_MARGIN_TOP = 40
_BAR_WIDTH = 18
_GROUP_GAP = 24
_PLOT_HEIGHT = 260


def _numeric_cells(
    figure: FigureData,
) -> Tuple[List[str], Dict[str, List[float]]]:
    """Rows and columns of ``figure`` that are fully numeric."""
    keep_cols = [
        index
        for index in range(len(figure.columns))
        if any(
            len(values) > index and isinstance(values[index], (int, float))
            for values in figure.rows.values()
        )
    ]
    columns = [figure.columns[i] for i in keep_cols]
    rows: Dict[str, List[float]] = {}
    for label, values in figure.rows.items():
        cells = [values[i] for i in keep_cols if i < len(values)]
        if len(cells) == len(keep_cols) and all(
            isinstance(cell, (int, float)) for cell in cells
        ):
            rows[label] = [float(cell) for cell in cells]
    return columns, rows


def render_svg(
    figure: FigureData,
    baseline: float | None = 1.0,
    max_rows: int = 12,
) -> str:
    """Render a grouped bar chart of ``figure`` as an SVG string.

    ``baseline`` draws a dashed reference line (the paper's figures are
    normalized to 1.0); pass None to omit it.
    """
    columns, rows = _numeric_cells(figure)
    if not columns or not rows:
        raise ValueError(f"figure {figure.name} has no numeric cells")
    labels = list(rows)[:max_rows]
    peak = max(
        max(rows[label]) for label in labels
    )
    if baseline is not None:
        peak = max(peak, baseline)
    peak = peak or 1.0

    group_width = len(columns) * _BAR_WIDTH
    width = _MARGIN_LEFT + len(labels) * (group_width + _GROUP_GAP) + 20
    height = _MARGIN_TOP + _PLOT_HEIGHT + _MARGIN_BOTTOM
    floor = _MARGIN_TOP + _PLOT_HEIGHT

    def y_of(value: float) -> float:
        """Pixel y-coordinate of a data value."""
        return floor - (value / peak) * _PLOT_HEIGHT

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">'
    )
    parts.append(
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="13">{html.escape(figure.title)}</text>'
    )
    # Axes.
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{floor}" stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{floor}" x2="{width - 10}" '
        f'y2="{floor}" stroke="#333"/>'
    )
    # Y ticks at quarters of the peak.
    for fraction in (0.25, 0.5, 0.75, 1.0):
        value = peak * fraction
        y = y_of(value)
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 4}" y1="{y:.1f}" '
            f'x2="{_MARGIN_LEFT}" y2="{y:.1f}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{value:.2g}</text>'
        )
    # Baseline reference.
    if baseline is not None and baseline <= peak:
        y = y_of(baseline)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" x2="{width - 10}" '
            f'y2="{y:.1f}" stroke="#999" stroke-dasharray="4 3"/>'
        )
    # Bars.
    for group_index, label in enumerate(labels):
        base_x = _MARGIN_LEFT + _GROUP_GAP / 2 + group_index * (
            group_width + _GROUP_GAP
        )
        for bar_index, value in enumerate(rows[label]):
            x = base_x + bar_index * _BAR_WIDTH
            y = y_of(value)
            color = PALETTE[bar_index % len(PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{_BAR_WIDTH - 3}" '
                f'height="{max(0.0, floor - y):.1f}" fill="{color}">'
                f"<title>{html.escape(label)} / "
                f"{html.escape(columns[bar_index])}: {value:.3f}</title>"
                f"</rect>"
            )
        parts.append(
            f'<text x="{base_x + group_width / 2:.1f}" y="{floor + 14}" '
            f'text-anchor="middle">{html.escape(label)}</text>'
        )
    # Legend.
    legend_y = floor + 34
    legend_x = _MARGIN_LEFT
    for bar_index, column in enumerate(columns):
        color = PALETTE[bar_index % len(PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 9}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}">'
            f"{html.escape(column)}</text>"
        )
        legend_x += 14 + 7 * len(column) + 18
    parts.append("</svg>")
    return "".join(parts)


def save_svg(
    figure: FigureData, path: str, baseline: float | None = 1.0
) -> None:
    """Render and write the chart to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(figure, baseline=baseline))

"""Per-figure regeneration functions.

Each ``fig*`` function reproduces the data behind one figure of the
paper's evaluation (plus the Section IV characterization figures) and
returns a :class:`FigureData` with the same rows/series the paper plots.
``PAPER`` notes record what the paper reports so EXPERIMENTS.md can put
measured and published values side by side.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from repro.analysis import (
    attribute_map,
    build_timeline,
    classify_shared_pages,
    page_interval_profile,
    sharing_summary,
)
from repro.harness.experiment import (
    PAPER_APPS,
    ExperimentRunner,
    RunKey,
    geometric_mean,
)
from repro.workloads import make_workload

#: Uniform schemes in the paper's figure order.
UNIFORM_SCHEMES = ("on_touch", "access_counter", "duplication")


@dataclasses.dataclass
class FigureData:
    """Tabular data for one regenerated figure."""

    name: str
    title: str
    columns: List[str]
    #: row label -> cell values (floats or strings), one per column.
    rows: Dict[str, List[object]]
    #: What the paper reports for the same figure (for EXPERIMENTS.md).
    paper: str = ""
    notes: str = ""

    def cell(self, row: str, column: str) -> object:
        """One cell, addressed by row label and column name."""
        return self.rows[row][self.columns.index(column)]


def _speedup_figure(
    runner: ExperimentRunner,
    name: str,
    title: str,
    policies: Sequence[str],
    paper: str,
    baseline: str = "on_touch",
    **overrides: object,
) -> FigureData:
    """Shared shape of the per-app normalized-performance figures."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        rows[app] = [
            runner.speedup(app, policy, baseline, **overrides)
            for policy in policies
        ]
    rows["geomean"] = [
        geometric_mean(rows[app][i] for app in PAPER_APPS)
        for i in range(len(policies))
    ]
    return FigureData(
        name=name,
        title=title,
        columns=list(policies),
        rows=rows,
        paper=paper,
    )


def fig01(runner: ExperimentRunner) -> FigureData:
    """Figure 1: uniform schemes + Ideal, normalized to on-touch."""
    return _speedup_figure(
        runner,
        "fig01",
        "Performance of each scheme relative to on-touch migration",
        (*UNIFORM_SCHEMES, "ideal"),
        paper=(
            "No one-size-fits-all: OT wins FIR/SC/C2D, duplication wins "
            "BFS/GEMM/MM, access-counter wins BS; Ideal far above all."
        ),
    )


def fig03(runner: ExperimentRunner) -> FigureData:
    """Figure 3: page-handling latency breakdown per scheme."""
    columns = [
        "Local",
        "Host",
        "Page-migration",
        "Remote-access",
        "Page-duplication",
        "Write-collapse",
    ]
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        base_total = None
        for policy in UNIFORM_SCHEMES:
            result = runner.run(runner.key(app, policy))
            breakdown = result.breakdown.as_dict()
            if base_total is None:
                base_total = max(1, result.breakdown.total)
            rows[f"{app}/{policy}"] = [
                breakdown[column] / base_total for column in columns
            ]
    return FigureData(
        name="fig03",
        title=(
            "Page-handling latency breakdown (normalized to each app's "
            "on-touch total)"
        ),
        columns=columns,
        rows=rows,
        paper=(
            "OT dominated by page-migration; AC trades it for "
            "remote-access; duplication shows page-duplication and "
            "write-collapse instead."
        ),
    )


def fig04(runner: ExperimentRunner) -> FigureData:
    """Figure 4: private/shared pages and accesses per application."""
    columns = [
        "private_pages",
        "shared_pages",
        "private_accesses",
        "shared_accesses",
    ]
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        summary = sharing_summary(make_workload(app, scale=runner.scale))
        rows[app] = [
            summary.private_page_fraction,
            summary.shared_page_fraction,
            summary.private_access_fraction,
            summary.shared_access_fraction,
        ]
    return FigureData(
        name="fig04",
        title="Private vs shared pages and accesses",
        columns=columns,
        rows=rows,
        paper=(
            "FIR/SC almost all private; BFS/ST almost all shared (BFS "
            "accesses still mostly to private pages); C2D/MM mixed."
        ),
    )


def fig05(runner: ExperimentRunner) -> FigureData:
    """Figure 5: shared-page access pattern over time (C2D vs ST)."""
    rows: Dict[str, List[object]] = {}
    for app in ("c2d", "st"):
        trace = make_workload(app, scale=runner.scale)
        timeline = build_timeline(trace, num_intervals=32)
        classes = classify_shared_pages(timeline)
        total_shared = len(classes["pc_shared"]) + len(classes["all_shared"])
        rows[app] = [
            len(classes["pc_shared"]),
            len(classes["all_shared"]),
            (len(classes["pc_shared"]) / total_shared)
            if total_shared
            else 0.0,
        ]
    return FigureData(
        name="fig05",
        title="Shared pages classified as PC-shared vs all-shared",
        columns=["pc_shared_pages", "all_shared_pages", "pc_fraction"],
        rows=rows,
        paper=(
            "C2D's shared pages are producer-consumer (one GPU dominates "
            "each interval); ST's are all-shared with phase changes."
        ),
    )


def fig06_07(runner: ExperimentRunner) -> FigureData:
    """Figures 6-7: GEMM attribute maps + neighbor similarity."""
    trace = make_workload("gemm", scale=runner.scale)
    # The paper uses 50 wall-clock intervals over full-length runs; our
    # scaled traces need coarser intervals for per-cell samples to
    # accumulate (see EXPERIMENTS.md).
    amap = attribute_map(trace, num_intervals=20)
    return FigureData(
        name="fig06_07",
        title="GEMM page attributes over time (neighbor agreement)",
        columns=["neighbor_agreement", "intervals", "pages"],
        rows={
            "sharing": [
                amap.neighbor_agreement(amap.sharing),
                amap.num_intervals,
                len(amap.pages),
            ],
            "read_write": [
                amap.neighbor_agreement(amap.read_write),
                amap.num_intervals,
                len(amap.pages),
            ],
        },
        paper=(
            "Neighboring GEMM pages share private/shared and read/RW "
            "attributes (consecutive matrix segments)."
        ),
    )


def fig08(runner: ExperimentRunner) -> FigureData:
    """Figure 8: ST attribute map + neighbor similarity over time."""
    trace = make_workload("st", scale=runner.scale)
    amap = attribute_map(trace, num_intervals=20)
    return FigureData(
        name="fig08",
        title="ST page attributes over time (neighbor agreement)",
        columns=["neighbor_agreement", "intervals", "pages"],
        rows={
            "sharing": [
                amap.neighbor_agreement(amap.sharing),
                amap.num_intervals,
                len(amap.pages),
            ],
            "read_write": [
                amap.neighbor_agreement(amap.read_write),
                amap.num_intervals,
                len(amap.pages),
            ],
        },
        paper=(
            "Even as ST attributes change over time, neighbouring pages "
            "change together."
        ),
    )


def fig09(runner: ExperimentRunner) -> FigureData:
    """Figure 9: accesses to read pages vs read-write pages."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        summary = sharing_summary(make_workload(app, scale=runner.scale))
        rows[app] = [
            summary.read_access_fraction,
            summary.read_write_access_fraction,
        ]
    return FigureData(
        name="fig09",
        title="Accesses to read-only vs read-write pages",
        columns=["read_accesses", "read_write_accesses"],
        rows=rows,
        paper=(
            "BFS/GEMM/MM read-dominated (duplication-friendly); "
            "BS/C2D/SC/ST read-write intensive."
        ),
    )


def fig10(runner: ExperimentRunner) -> FigureData:
    """Figure 10: read/write mix over time for one ST read-write page."""
    trace = make_workload("st", scale=runner.scale)
    timeline = build_timeline(trace, num_intervals=32)
    target = None
    best_writes = -1
    for vpn in timeline.touched_pages():
        writes = sum(
            sample.writes
            for sample in timeline.page_timeline(vpn)
            if sample is not None
        )
        if writes > best_writes:
            best_writes = writes
            target = vpn
    assert target is not None
    rows: Dict[str, List[object]] = {}
    read_only_intervals = 0
    for row in page_interval_profile(timeline, target):
        interval = row["interval"]
        rows[f"interval_{interval:02d}"] = [row["reads"], row["writes"]]
        if row["accesses"] and not row["writes"]:
            read_only_intervals += 1
    rows["read_only_intervals"] = [read_only_intervals, ""]
    return FigureData(
        name="fig10",
        title=f"Read/write accesses per interval for ST page {target}",
        columns=["reads", "writes"],
        rows=rows,
        paper=(
            "The page starts with read-only intervals and becomes "
            "read-write later in the run."
        ),
    )


def fig17(runner: ExperimentRunner) -> FigureData:
    """Figure 17: GRIT vs the three uniform schemes (headline result)."""
    return _speedup_figure(
        runner,
        "fig17",
        "GRIT and uniform schemes, normalized to on-touch migration",
        (*UNIFORM_SCHEMES, "grit", "ideal"),
        paper=(
            "GRIT averages +60%/+49%/+29% over OT/AC/duplication and "
            "tracks the best uniform scheme per app (within 2% of "
            "duplication on BFS)."
        ),
    )


def fig18(runner: ExperimentRunner) -> FigureData:
    """Figure 18: total GPU page faults, normalized to on-touch."""
    policies = (*UNIFORM_SCHEMES, "grit")
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        base = runner.run(runner.key(app, "on_touch")).counters.total_faults
        rows[app] = [
            runner.run(runner.key(app, policy)).counters.total_faults
            / max(1, base)
            for policy in policies
        ]
    rows["mean"] = [
        geometric_mean(max(rows[app][i], 1e-9) for app in PAPER_APPS)
        for i in range(len(policies))
    ]
    return FigureData(
        name="fig18",
        title="GPU page faults (local + protection), normalized to OT",
        columns=list(policies),
        rows=rows,
        paper=(
            "GRIT reduces faults by 39%/55%/16% vs OT/AC/duplication. "
            "(Here AC faults less than in the paper: sparse traces keep "
            "its remote mappings stable — see EXPERIMENTS.md.)"
        ),
    )


def fig19(runner: ExperimentRunner) -> FigureData:
    """Figure 19: share of L2-TLB-missing accesses per GRIT scheme."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        fractions = runner.run(
            runner.key(app, "grit")
        ).counters.scheme_usage_fractions()
        rows[app] = [fractions["OT"], fractions["AC"], fractions["D"]]
    return FigureData(
        name="fig19",
        title="Page placement scheme usage under GRIT",
        columns=["OT", "AC", "D"],
        rows=rows,
        paper=(
            "Duplication dominates BFS/GEMM/MM, OT dominates C2D/FIR/SC, "
            "AC dominates BS, ST mixes duplication and OT."
        ),
    )


def fig20(runner: ExperimentRunner) -> FigureData:
    """Figure 20: component ablation (PA-Table / +PA-Cache / +NAP)."""
    variants = [
        (
            "pa_table_only",
            dict(use_pa_cache=False, use_neighbor_prediction=False),
        ),
        (
            "pa_table_pa_cache",
            dict(use_pa_cache=True, use_neighbor_prediction=False),
        ),
        (
            "pa_table_nap",
            dict(use_pa_cache=False, use_neighbor_prediction=True),
        ),
        ("full_grit", dict()),
    ]
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        rows[app] = [
            runner.speedup(app, "grit", "on_touch", **overrides)
            for _, overrides in variants
        ]
    rows["geomean"] = [
        geometric_mean(rows[app][i] for app in PAPER_APPS)
        for i in range(len(variants))
    ]
    return FigureData(
        name="fig20",
        title="GRIT component ablation, normalized to on-touch",
        columns=[label for label, _ in variants],
        rows=rows,
        paper=(
            "PA-Table only +31%, +PA-Cache +47%, +NAP +44%, full GRIT "
            "+60% — every component contributes."
        ),
    )


def fig21(runner: ExperimentRunner) -> FigureData:
    """Figure 21: fault-threshold sensitivity (2/4/8/16)."""
    thresholds = (2, 4, 8, 16)
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        rows[app] = [
            runner.speedup(app, "grit", "on_touch", fault_threshold=threshold)
            for threshold in thresholds
        ]
    rows["geomean"] = [
        geometric_mean(rows[app][i] for app in PAPER_APPS)
        for i in range(len(thresholds))
    ]
    return FigureData(
        name="fig21",
        title="GRIT with fault thresholds 2/4/8/16, normalized to OT",
        columns=[f"threshold_{t}" for t in thresholds],
        rows=rows,
        paper="+53%/+60%/+59%/+48%: gains saturate at threshold 4.",
    )


def fig22_24(runner: ExperimentRunner) -> FigureData:
    """Figures 22-24: 2-, 8- and 16-GPU systems (same input size)."""
    rows: Dict[str, List[object]] = {}
    gpu_counts = (2, 8, 16)
    for gpus in gpu_counts:
        speedups = [
            runner.speedup(app, "grit", "on_touch", num_gpus=gpus)
            for app in PAPER_APPS
        ]
        fault_ratios = []
        for app in PAPER_APPS:
            grit = runner.run(runner.key(app, "grit", num_gpus=gpus))
            base = runner.run(runner.key(app, "on_touch", num_gpus=gpus))
            fault_ratios.append(
                grit.counters.total_faults / max(1, base.counters.total_faults)
            )
        rows[f"{gpus}_gpus"] = [
            geometric_mean(speedups),
            1.0 - geometric_mean(max(r, 1e-9) for r in fault_ratios),
        ]
    return FigureData(
        name="fig22_24",
        title="GRIT vs on-touch with 2/8/16 GPUs",
        columns=["speedup_vs_ot", "fault_reduction_vs_ot"],
        rows=rows,
        paper=(
            "GRIT stays effective across GPU counts: +40%/+38%/+27% over "
            "OT with 2/8/16 GPUs, fault reductions ~30-34%."
        ),
    )


def fig25(runner: ExperimentRunner) -> FigureData:
    """Figure 25: large pages (16x base page, enlarged inputs)."""
    large_page = 16 * 4096
    large_scale = max(1.0, runner.scale * 4)
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        rows[app] = [
            runner.speedup(
                app,
                "grit",
                "on_touch",
                page_size=large_page,
                scale=large_scale,
            )
        ]
    adjacency = ("c2d", "fir", "sc", "st")
    rows["geomean_all"] = [
        geometric_mean(rows[app][0] for app in PAPER_APPS)
    ]
    rows["geomean_adjacent"] = [
        geometric_mean(rows[app][0] for app in adjacency)
    ]
    return FigureData(
        name="fig25",
        title="GRIT vs on-touch with large pages and enlarged inputs",
        columns=["speedup_vs_ot_large_pages"],
        rows=rows,
        paper=(
            "With 2MB pages GRIT's gain shrinks to +23% (false sharing "
            "mixes page attributes).  We model large pages as 16x the "
            "base page on 4x inputs; adjacency apps land near the "
            "paper's +23%, random apps diverge (see EXPERIMENTS.md)."
        ),
        notes="large page = 64 KB (16 x 4 KB), inputs scaled 4x",
    )


def fig26(runner: ExperimentRunner) -> FigureData:
    """Figure 26: Griffin comparison (DPC, GRIT, Griffin, GRIT+ACUD)."""
    policies = ("griffin_dpc", "grit", "griffin", "grit_acud")
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        base = runner.run(runner.key(app, "griffin_dpc"))
        rows[app] = [
            runner.run(runner.key(app, policy)).speedup_over(base)
            for policy in policies
        ]
    rows["geomean"] = [
        geometric_mean(rows[app][i] for app in PAPER_APPS)
        for i in range(len(policies))
    ]
    return FigureData(
        name="fig26",
        title="Griffin comparison, normalized to Griffin-DPC",
        columns=list(policies),
        rows=rows,
        paper=(
            "GRIT +27% over Griffin-DPC; GRIT+ACUD +9% over GRIT and "
            "+16% over full Griffin."
        ),
    )


def fig27(runner: ExperimentRunner) -> FigureData:
    """Figure 27: GPS comparison (plus oversubscription pressure)."""
    rows: Dict[str, List[object]] = {}
    eviction_ratios = []
    for app in PAPER_APPS:
        gps = runner.run(runner.key(app, "gps"))
        grit = runner.run(runner.key(app, "grit"))
        rows[app] = [
            grit.speedup_over(gps),
            gps.counters.evictions,
            grit.counters.evictions,
        ]
        eviction_ratios.append(
            gps.counters.evictions / max(1, grit.counters.evictions)
        )
    rows["geomean"] = [
        geometric_mean(rows[app][0] for app in PAPER_APPS),
        "",
        "",
    ]
    rows["gps_eviction_ratio"] = [
        geometric_mean(max(r, 1e-9) for r in eviction_ratios),
        "",
        "",
    ]
    return FigureData(
        name="fig27",
        title="GRIT vs GPS (speedup and eviction pressure)",
        columns=["grit_vs_gps", "gps_evictions", "grit_evictions"],
        rows=rows,
        paper=(
            "GRIT +15% over GPS; GPS shows ~34% higher oversubscription "
            "(eviction) rate from replicating every touched page."
        ),
    )


def fig28(runner: ExperimentRunner) -> FigureData:
    """Figure 28: vs Griffin-DPC + Trans-FW."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        combo = runner.run(runner.key(app, "griffin_dpc_transfw"))
        grit = runner.run(runner.key(app, "grit"))
        rows[app] = [grit.speedup_over(combo)]
    rows["geomean"] = [
        geometric_mean(rows[app][0] for app in PAPER_APPS)
    ]
    return FigureData(
        name="fig28",
        title="GRIT vs Griffin-DPC combined with Trans-FW",
        columns=["grit_vs_dpc_transfw"],
        rows=rows,
        paper="GRIT +18% over the combination (more local accesses).",
    )


def fig29(runner: ExperimentRunner) -> FigureData:
    """Figure 29: vs first-touch migration."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        rows[app] = [runner.speedup(app, "grit", "first_touch")]
    rows["geomean"] = [
        geometric_mean(rows[app][0] for app in PAPER_APPS)
    ]
    return FigureData(
        name="fig29",
        title="GRIT vs first-touch migration",
        columns=["grit_vs_first_touch"],
        rows=rows,
        paper=(
            "GRIT +54% on average: marginal on private-heavy FIR/SC, "
            "large on shared-heavy MM/GEMM."
        ),
    )


def fig30(runner: ExperimentRunner) -> FigureData:
    """Figure 30: GRIT combined with tree-based prefetching."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        grit = runner.run(runner.key(app, "grit", prefetch=True))
        base = runner.run(runner.key(app, "on_touch", prefetch=True))
        rows[app] = [grit.speedup_over(base), grit.counters.prefetches]
    rows["geomean"] = [
        geometric_mean(rows[app][0] for app in PAPER_APPS),
        "",
    ]
    return FigureData(
        name="fig30",
        title="GRIT + prefetching vs on-touch + prefetching",
        columns=["grit_vs_ot_with_prefetch", "grit_prefetches"],
        rows=rows,
        paper="+23%: GRIT is complementary to the prefetcher.",
    )


def fig31(runner: ExperimentRunner) -> FigureData:
    """Figure 31: DNN model parallelism (VGG16 and ResNet18)."""
    rows: Dict[str, List[object]] = {}
    for model in ("vgg16", "resnet18"):
        rows[model] = [runner.speedup(model, "grit", "on_touch")]
    return FigureData(
        name="fig31",
        title="GRIT on DNN model-parallel training, normalized to OT",
        columns=["grit_vs_ot"],
        rows=rows,
        paper="VGG16 +15%, ResNet18 +18%.",
    )


def ablation_pa_cache(runner: ExperimentRunner) -> FigureData:
    """Extra ablation: GRIT with and without the PA-Cache, plus hit data."""
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        with_cache = runner.speedup(app, "grit", "on_touch")
        without = runner.speedup(
            app, "grit", "on_touch", use_pa_cache=False
        )
        rows[app] = [with_cache, without, with_cache / without]
    return FigureData(
        name="ablation_pa_cache",
        title="PA-Cache contribution per application",
        columns=["with_pa_cache", "without_pa_cache", "ratio"],
        rows=rows,
        paper="Design-choice ablation (DESIGN.md section 6).",
    )


def ablation_group_ladder(runner: ExperimentRunner) -> FigureData:
    """Extra ablation: the Neighboring-Aware group-size ladder.

    DESIGN.md section 6: how much of NAP's benefit comes from each rung
    of the 8/64/512 promotion ladder (max group 1 disables NAP's
    propagation entirely while keeping the rest of GRIT).
    """
    ladder = (1, 8, 64, 512)
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        rows[app] = [
            runner.speedup(app, "grit", "on_touch", max_group_pages=size)
            for size in ladder
        ]
    rows["geomean"] = [
        geometric_mean(rows[app][i] for app in PAPER_APPS)
        for i in range(len(ladder))
    ]
    return FigureData(
        name="ablation_group_ladder",
        title="GRIT with max group size 1/8/64/512 pages, vs on-touch",
        columns=[f"group_{size}" for size in ladder],
        rows=rows,
        paper=(
            "Design-choice ablation (DESIGN.md section 6): the paper "
            "fixes the ladder at 512 (one 2 MB page-table page)."
        ),
    )


def extension_grit_transfw(runner: ExperimentRunner) -> FigureData:
    """Extension: GRIT stacked with Trans-FW translation forwarding.

    The paper combines Trans-FW with Griffin-DPC (Figure 28); the same
    orthogonality argument applies to GRIT, so this measures the stack.
    """
    rows: Dict[str, List[object]] = {}
    for app in PAPER_APPS:
        grit = runner.run(runner.key(app, "grit"))
        stacked = runner.run(runner.key(app, "grit_transfw"))
        base = runner.run(runner.key(app, "on_touch"))
        rows[app] = [
            grit.speedup_over(base),
            stacked.speedup_over(base),
            stacked.speedup_over(grit),
        ]
    rows["geomean"] = [
        geometric_mean(rows[app][i] for app in PAPER_APPS) for i in range(3)
    ]
    return FigureData(
        name="extension_grit_transfw",
        title="GRIT + Trans-FW, normalized to on-touch",
        columns=["grit", "grit_transfw", "stack_gain"],
        rows=rows,
        paper=(
            "Extension beyond the paper: Trans-FW's fault-service "
            "reduction is orthogonal to GRIT, as it is to Griffin-DPC "
            "in Figure 28."
        ),
    )


def extension_oversubscription(runner: ExperimentRunner) -> FigureData:
    """Extension: sensitivity to the DRAM capacity fraction.

    Table I fixes GPU DRAM at 70% of the footprint; this sweeps the
    fraction to show how oversubscription pressure shifts the scheme
    tradeoffs (duplication suffers most as capacity shrinks — its
    replicas are what overflow).
    """
    fractions = (0.5, 0.7, 0.9)
    policies = ("access_counter", "duplication", "grit")
    rows: Dict[str, List[object]] = {}
    for fraction in fractions:
        values = []
        for policy in policies:
            speedups = [
                runner.speedup(
                    app, policy, "on_touch", dram_fraction=fraction
                )
                for app in PAPER_APPS
            ]
            values.append(geometric_mean(speedups))
        rows[f"dram_{int(fraction * 100)}pct"] = values
    return FigureData(
        name="extension_oversubscription",
        title="Scheme speedups vs on-touch across DRAM capacity fractions",
        columns=list(policies),
        rows=rows,
        paper=(
            "Extension beyond the paper (Table I fixes 70%): duplication "
            "degrades fastest as capacity shrinks; access-counter "
            "migration is capacity-immune (pages stay in host memory)."
        ),
    )


def extension_eviction_policy(runner: ExperimentRunner) -> FigureData:
    """Extension: DRAM replacement-policy sensitivity.

    Table I's experiments evict LRU; FIFO and random victims change how
    painful oversubscription is, especially for the replica-heavy
    schemes whose evicted pages get re-faulted and re-duplicated.
    """
    policies = ("duplication", "grit")
    rows: Dict[str, List[object]] = {}
    for eviction in ("lru", "fifo", "random"):
        values = []
        for policy in policies:
            speedups = [
                runner.speedup(
                    app, policy, "on_touch", eviction_policy=eviction
                )
                for app in PAPER_APPS
            ]
            values.append(geometric_mean(speedups))
        rows[eviction] = values
    return FigureData(
        name="extension_eviction_policy",
        title="Scheme speedups vs on-touch under LRU/FIFO/random eviction",
        columns=list(policies),
        rows=rows,
        paper=(
            "Extension beyond the paper (Table I runs LRU): the GRIT "
            "advantage is robust to the DRAM replacement policy."
        ),
    )


def sensitivity_counter_threshold(runner: ExperimentRunner) -> FigureData:
    """Extension: hardware access-counter threshold sensitivity.

    The paper inherits Volta's static threshold of 256 remote accesses
    per 64 KB group (Section II-B2); this sweep shows how the uniform
    access-counter scheme and GRIT (whose AC mode uses the same
    counters) respond to the threshold choice.
    """
    thresholds = (32, 128, 256, 512)
    policies = ("access_counter", "grit")
    rows: Dict[str, List[object]] = {}
    for threshold in thresholds:
        values = []
        for policy in policies:
            speedups = [
                runner.speedup(
                    app, policy, "on_touch", counter_threshold=threshold
                )
                for app in PAPER_APPS
            ]
            values.append(geometric_mean(speedups))
        rows[f"threshold_{threshold}"] = values
    return FigureData(
        name="sensitivity_counter_threshold",
        title="Access-counter threshold sweep, speedup vs on-touch",
        columns=list(policies),
        rows=rows,
        paper=(
            "Extension beyond the paper (Volta fixes 256): lower "
            "thresholds migrate sooner, trading remote-access latency "
            "for migration/invalidation overhead."
        ),
    )


FIGURES: Dict[str, Callable[[ExperimentRunner], FigureData]] = {
    "fig01": fig01,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06_07": fig06_07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "fig22_24": fig22_24,
    "fig25": fig25,
    "fig26": fig26,
    "fig27": fig27,
    "fig28": fig28,
    "fig29": fig29,
    "fig30": fig30,
    "fig31": fig31,
    "ablation_pa_cache": ablation_pa_cache,
    "ablation_group_ladder": ablation_group_ladder,
    "extension_grit_transfw": extension_grit_transfw,
    "extension_oversubscription": extension_oversubscription,
    "extension_eviction_policy": extension_eviction_policy,
    "sensitivity_counter_threshold": sensitivity_counter_threshold,
}


def run_figure(
    name: str, runner: ExperimentRunner | None = None
) -> FigureData:
    """Regenerate one figure by name."""
    try:
        builder = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
    return builder(runner or ExperimentRunner())


def warmup_keys(runner: ExperimentRunner) -> List[RunKey]:
    """Keys behind the hottest shared figure runs, for pre-warming.

    Covers the headline Figures 1/17/18/19 matrix plus the Figure 20
    component-ablation variants — the runs most figure functions
    share.  Figure-specific sweeps (GPU scaling, thresholds, ...) are
    cheap by comparison and simulate lazily.
    """
    from repro.harness.orchestrator import headline_keys

    keys = headline_keys(runner)
    ablation_variants = (
        dict(use_pa_cache=False, use_neighbor_prediction=False),
        dict(use_pa_cache=True, use_neighbor_prediction=False),
        dict(use_pa_cache=False, use_neighbor_prediction=True),
    )
    for overrides in ablation_variants:
        for app in PAPER_APPS:
            keys.append(runner.key(app, "grit", **overrides))
    return list(dict.fromkeys(keys))

"""Internal-consistency validation of simulation results.

A :class:`SimulationResult` carries overlapping information (counters,
latency breakdown, per-GPU clocks, link traffic); these checks catch
accounting bugs — a mechanic that forgot to count, a category charged
twice — without needing ground truth.  Run them in tests, or on any
result you don't trust:

    from repro.harness.validate import validate_result
    issues = validate_result(result)
    assert not issues, issues
"""

from __future__ import annotations

from typing import List

from repro.constants import LatencyCategory
from repro.sim.result import SimulationResult


def validate_result(result: SimulationResult) -> List[str]:
    """Return a list of consistency violations (empty when clean)."""
    issues: List[str] = []
    counters = result.counters

    if counters.accesses != counters.reads + counters.writes:
        issues.append("accesses != reads + writes")
    if counters.total_faults != (
        counters.local_page_faults + counters.protection_faults
    ):
        issues.append("total_faults mismatch")
    if result.total_cycles != max(result.per_gpu_cycles, default=0):
        issues.append("total_cycles is not the max per-GPU clock")
    if any(clock < 0 for clock in result.per_gpu_cycles):
        issues.append("negative per-GPU clock")

    if counters.accesses and counters.l2_tlb_misses > counters.accesses:
        issues.append("more L2 TLB misses than accesses")
    if counters.local_page_faults > counters.l2_tlb_misses:
        issues.append("more local faults than L2 TLB misses")

    usage_total = sum(counters.scheme_usage.values())
    if usage_total != counters.l2_tlb_misses:
        issues.append("scheme usage tallies != L2 TLB misses")

    breakdown = result.breakdown
    if breakdown.total < 0:
        issues.append("negative breakdown total")
    # Fault-driven categories require faults (page-migration can also
    # come from counter-triggered migrations and prefetch installs).
    if (
        breakdown.cycles(LatencyCategory.WRITE_COLLAPSE) > 0
        and counters.write_collapses == 0
        and counters.scheme_changes == 0
    ):
        issues.append("write-collapse latency without collapses")
    if (
        breakdown.cycles(LatencyCategory.HOST) > 0
        and counters.total_faults == 0
        and counters.migrations == 0
        and result.policy != "ideal"
    ):
        issues.append("host latency without faults")

    if counters.migrations and result.details.get("pcie_bytes", 1) == 0:
        if result.details.get("nvlink_bytes", 0) == 0:
            issues.append("migrations without any link traffic")

    if counters.write_collapses and result.policy == "gps":
        issues.append("GPS must never collapse")

    evictions = result.details.get("per_gpu_evictions")
    if evictions is not None and sum(evictions) != counters.evictions:
        issues.append("eviction counter disagrees with DRAM directories")

    return issues


def assert_valid(result: SimulationResult) -> None:
    """Raise AssertionError with the violation list if any."""
    issues = validate_result(result)
    if issues:
        raise AssertionError(
            f"inconsistent result for {result.workload}/{result.policy}: "
            + "; ".join(issues)
        )

"""Disk-backed result cache for cross-process reuse.

The in-process :class:`ExperimentRunner` cache dies with the process;
this cache persists result *summaries* (cycles, counters, breakdown —
everything the figures consume) as one JSON file per run key, so
repeated CLI invocations and benchmark reruns skip simulation.

Keys include a fingerprint of the base configuration, so changing any
latency constant or Table I parameter invalidates the cache
automatically.  Entries additionally carry a ``schema_version``;
entries written by a different schema (renamed counters, new latency
categories) are treated as misses rather than silently rehydrated with
missing fields.  Writes go through a temp file plus an atomic rename,
so concurrent sweep workers sharing one cache directory never observe
a torn JSON file.  Stored entries are rehydrated into
:class:`SimulationResult` objects with empty ``details`` marked
``from_cache`` — figure code only reads counters/breakdown/cycles, all
of which round-trip exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict

from repro.config import SystemConfig
from repro.constants import LatencyCategory, Scheme
from repro.harness.experiment import ExperimentRunner, RunKey
from repro.sim.result import SimulationResult
from repro.stats.counters import EventCounters
from repro.stats.latency import LatencyBreakdown

#: Cache entry schema version.  Bump whenever the serialized shape
#: changes — a new/renamed :class:`EventCounters` field, a new
#: :class:`LatencyBreakdown` category, or a new top-level key — so
#: entries written by older code are rejected as misses instead of
#: rehydrating with silently-missing counters.
SCHEMA_VERSION = 2


class StaleCacheEntry(ValueError):
    """A cache file does not match the current result schema."""


def config_fingerprint(config: SystemConfig) -> str:
    """Stable hash of every configuration value."""
    payload = json.dumps(config.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _key_filename(key: RunKey, fingerprint: str) -> str:
    payload = json.dumps(
        dataclasses.asdict(key), sort_keys=True
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
    return f"{key.workload}-{key.policy}-{digest}-{fingerprint}.json"


def _serialize(result: SimulationResult) -> Dict[str, object]:
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": result.workload,
        "policy": result.policy,
        "total_cycles": result.total_cycles,
        "per_gpu_cycles": list(result.per_gpu_cycles),
        "num_gpus": result.num_gpus,
        "page_size": result.page_size,
        "counters": result.counters.as_dict(),
        "scheme_usage": {
            scheme.name: count
            for scheme, count in result.counters.scheme_usage.items()
        },
        "breakdown": {
            category.name: result.breakdown.cycles(category)
            for category in LatencyCategory
        },
    }


def _deserialize(data: Dict[str, object]) -> SimulationResult:
    if data.get("schema_version") != SCHEMA_VERSION:
        raise StaleCacheEntry(
            f"cache entry schema {data.get('schema_version')!r} != "
            f"current {SCHEMA_VERSION}"
        )
    counters = EventCounters()
    stored = dict(data["counters"])
    stored.pop("total_faults", None)  # derived property
    known = vars(counters)
    for name, value in stored.items():
        if name not in known:
            raise StaleCacheEntry(
                f"cache entry has unknown counter {name!r}"
            )
        # simlint: ignore[GRIT-P001]  (names validated against vars())
        setattr(counters, name, value)
    counters.scheme_usage = {
        Scheme[name]: count
        for name, count in data["scheme_usage"].items()
    }
    breakdown = LatencyBreakdown()
    for name, cycles in data["breakdown"].items():
        breakdown.charge(LatencyCategory[name], cycles)
    return SimulationResult(
        workload=data["workload"],
        policy=data["policy"],
        total_cycles=data["total_cycles"],
        per_gpu_cycles=list(data["per_gpu_cycles"]),
        counters=counters,
        breakdown=breakdown,
        num_gpus=data["num_gpus"],
        page_size=data["page_size"],
        details={"from_cache": True},
    )


class DiskCachedRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that persists results on disk."""

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        base_config: SystemConfig | None = None,
        scale: float = 0.3,
        artifacts_dir: str | None = None,
        observe: bool = False,
    ) -> None:
        super().__init__(
            base_config=base_config,
            scale=scale,
            artifacts_dir=artifacts_dir,
            observe=observe,
        )
        self.cache_dir = str(cache_dir)
        os.makedirs(self.cache_dir, exist_ok=True)
        self._fingerprint = config_fingerprint(self.base_config)
        self.disk_hits = 0
        self.disk_misses = 0

    def run(self, key: RunKey) -> SimulationResult:
        """Serve from memory, then disk, then simulate (and persist)."""
        if key in self._cache:
            return self._cache[key]
        path = os.path.join(
            self.cache_dir, _key_filename(key, self._fingerprint)
        )
        result = self._load(path)
        if result is not None:
            self._cache[key] = result
            self.disk_hits += 1
            self.last_observation = None
            return result
        result = super().run(key)
        self.disk_misses += 1
        self._store(path, result)
        return result

    def _load(self, path: str) -> SimulationResult | None:
        """Rehydrate one entry; stale/torn/missing files are misses."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None
        try:
            return _deserialize(data)
        except (StaleCacheEntry, KeyError, TypeError):
            return None

    def _store(self, path: str, result: SimulationResult) -> None:
        """Atomic tmp-file + rename write, safe under concurrency.

        Concurrent workers may race on the same key; each writes its
        own temp file and the last rename wins.  Runs are
        deterministic, so every racer renames identical bytes — a
        reader can never observe a torn entry.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(_serialize(result), handle)
        os.replace(tmp, path)

"""Experiment harness: run matrices and regenerate every paper figure."""

from repro.harness.experiment import ExperimentRunner, RunKey
from repro.harness.figures import FIGURES, FigureData, run_figure
from repro.harness.report import format_figure, format_table

__all__ = [
    "ExperimentRunner",
    "RunKey",
    "FIGURES",
    "FigureData",
    "run_figure",
    "format_figure",
    "format_table",
]

"""Serialization of results and figures (JSON / CSV).

Lets downstream tooling (plotting scripts, CI dashboards) consume the
reproduction's outputs without importing the library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from repro.harness.figures import FigureData
from repro.sim.result import SimulationResult


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Flatten a simulation result to plain JSON-friendly types."""
    data = result.summary()
    data["per_gpu_cycles"] = list(result.per_gpu_cycles)
    data["scheme_usage"] = result.counters.scheme_usage_fractions()
    data["latency_fractions"] = result.breakdown.fractions()
    data["details"] = {
        key: value
        for key, value in result.details.items()
        if isinstance(value, (int, float, str, list))
    }
    return data


def result_to_json(result: SimulationResult, indent: int = 2) -> str:
    """JSON rendering of result_to_dict."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def figure_to_dict(figure: FigureData) -> Dict[str, object]:
    """Flatten a figure to plain JSON-friendly types."""
    return {
        "name": figure.name,
        "title": figure.title,
        "columns": list(figure.columns),
        "rows": {label: list(values) for label, values in figure.rows.items()},
        "paper": figure.paper,
        "notes": figure.notes,
    }


def figure_to_json(figure: FigureData, indent: int = 2) -> str:
    """JSON rendering of figure_to_dict."""
    return json.dumps(figure_to_dict(figure), indent=indent, sort_keys=True)


def figure_to_csv(figure: FigureData) -> str:
    """Render a figure as CSV with a leading row-label column."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["row", *figure.columns])
    for label, values in figure.rows.items():
        writer.writerow([label, *values])
    return buffer.getvalue()

"""Process-parallel experiment sweeps (thin orchestrator front-end).

Figure regeneration is embarrassingly parallel across (workload, policy,
config) runs; these helpers fan a list of :class:`RunKey` out over the
resilient :mod:`repro.harness.orchestrator` and return the same
``{key: SimulationResult}`` mapping a sequential runner would produce.
Each task carries the caller's full effective
:class:`~repro.config.SystemConfig`, so parallel and sequential sweeps
agree exactly — including under non-default base configurations.

Usage::

    from repro.harness.parallel import run_keys_parallel

    keys = [runner.key(app, policy) for app in PAPER_APPS
            for policy in ("on_touch", "grit")]
    results = run_keys_parallel(keys, workers=4)
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.config import SystemConfig
from repro.harness.experiment import ExperimentRunner, RunKey
from repro.harness.orchestrator import SweepError, run_sweep
from repro.sim.result import SimulationResult


def run_keys_parallel(
    keys: Sequence[RunKey],
    workers: int | None = None,
    base_config: SystemConfig | None = None,
    artifacts_dir: str | None = None,
    cache_dir: str | None = None,
) -> Dict[RunKey, SimulationResult]:
    """Simulate every key, fanning out across worker processes.

    ``workers`` defaults to the CPU count (capped by the number of
    keys).  With ``workers=1`` the sweep runs inline, which is also
    the fallback on platforms without process support.  Raises
    :class:`SweepError` if any key still fails after the
    orchestrator's retries.
    """
    summary = run_sweep(
        keys,
        base_config=base_config,
        workers=workers,
        cache_dir=cache_dir,
        artifacts_dir=artifacts_dir,
    )
    failed = summary.failed_keys()
    if failed:
        labels = ", ".join(
            f"{key.workload}/{key.policy}" for key in failed
        )
        raise SweepError(f"sweep failed for: {labels}")
    return dict(summary.results)


def warm_runner_parallel(
    runner: ExperimentRunner,
    keys: Iterable[RunKey],
    workers: int | None = None,
) -> ExperimentRunner:
    """Pre-populate a runner's cache using worker processes.

    The runner's own ``base_config``, ``artifacts_dir``, and (for a
    :class:`~repro.harness.cache.DiskCachedRunner`) disk cache
    directory are forwarded to the workers, so the warmed cache holds
    exactly what sequential ``runner.run`` calls would have produced.
    After warming, every figure function that only touches ``keys``
    serves from cache — the pattern for fast whole-report regeneration:

        runner = ExperimentRunner(scale=0.25)
        warm_runner_parallel(runner, all_keys)
        write_report("REPORT.md", runner=runner)
    """
    results = run_keys_parallel(
        list(keys),
        workers=workers,
        base_config=runner.base_config,
        artifacts_dir=runner.artifacts_dir,
        cache_dir=getattr(runner, "cache_dir", None),
    )
    runner._cache.update(results)
    return runner


def headline_keys(runner: ExperimentRunner) -> list[RunKey]:
    """The run set behind Figures 1/17/18/19 — the usual warm-up."""
    from repro.harness.experiment import PAPER_APPS

    policies = (
        "on_touch",
        "access_counter",
        "duplication",
        "grit",
        "ideal",
    )
    return [
        runner.key(app, policy)
        for app in PAPER_APPS
        for policy in policies
    ]

"""Process-parallel experiment sweeps.

Figure regeneration is embarrassingly parallel across (workload, policy,
config) runs; this module fans a list of :class:`RunKey` out over a
process pool and returns the same ``{key: SimulationResult}`` mapping a
sequential runner would produce.  Each simulation is deterministic given
its key, so parallel and sequential sweeps agree exactly.

Usage::

    from repro.harness.parallel import run_keys_parallel

    keys = [runner.key(app, policy) for app in PAPER_APPS
            for policy in ("on_touch", "grit")]
    results = run_keys_parallel(keys, workers=4)
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Dict, Iterable, Sequence

from repro.harness.experiment import ExperimentRunner, RunKey
from repro.sim.result import SimulationResult


def _run_one(key: RunKey) -> SimulationResult:
    """Worker entry point: simulate one key in a fresh runner."""
    return ExperimentRunner(scale=key.scale).run(key)


def run_keys_parallel(
    keys: Sequence[RunKey],
    workers: int | None = None,
) -> Dict[RunKey, SimulationResult]:
    """Simulate every key, fanning out across processes.

    ``workers`` defaults to the CPU count (capped by the number of
    keys).  With ``workers=1`` the sweep runs inline, which is also the
    fallback on platforms without process support.
    """
    unique = list(dict.fromkeys(keys))
    if workers is None:
        workers = min(len(unique), os.cpu_count() or 1) or 1
    if workers <= 1 or len(unique) <= 1:
        runner_cache: Dict[RunKey, SimulationResult] = {}
        for key in unique:
            runner_cache[key] = _run_one(key)
        return runner_cache
    results: Dict[RunKey, SimulationResult] = {}
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers
    ) as pool:
        for key, result in zip(unique, pool.map(_run_one, unique)):
            results[key] = result
    return results


def warm_runner_parallel(
    runner: ExperimentRunner,
    keys: Iterable[RunKey],
    workers: int | None = None,
) -> ExperimentRunner:
    """Pre-populate a runner's cache using a process pool.

    After warming, every figure function that only touches ``keys``
    serves from cache — the pattern for fast whole-report regeneration:

        runner = ExperimentRunner(scale=0.25)
        warm_runner_parallel(runner, all_keys)
        write_report("REPORT.md", runner=runner)
    """
    results = run_keys_parallel(list(keys), workers=workers)
    runner._cache.update(results)
    return runner


def headline_keys(runner: ExperimentRunner) -> list[RunKey]:
    """The run set behind Figures 1/17/18/19 — the usual warm-up."""
    from repro.harness.experiment import PAPER_APPS

    policies = (
        "on_touch",
        "access_counter",
        "duplication",
        "grit",
        "ideal",
    )
    return [
        runner.key(app, policy)
        for app in PAPER_APPS
        for policy in policies
    ]

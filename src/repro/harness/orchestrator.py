"""Resilient process-parallel sweep orchestrator.

The paper's evaluation is a matrix of (workload, policy, config) runs;
this module schedules that matrix over worker processes with the fault
tolerance a long sweep needs:

* every task is a self-contained :class:`SweepTask` carrying the full
  effective :class:`~repro.config.SystemConfig`, so workers reproduce
  exactly the runs a sequential :class:`~repro.harness.experiment.
  ExperimentRunner` would perform — never a silently-default config;
* one worker process per in-flight task: a crash (``os._exit``, OOM
  kill, segfault) or a hang (caught by the per-task timeout) fails only
  that task, which is retried with exponential backoff and finally
  reported — it never takes down the sweep;
* when process support is unavailable the sweep degrades gracefully to
  inline execution (retries still apply; timeouts cannot be enforced
  in-process);
* with ``cache_dir`` set, workers share the on-disk
  :class:`~repro.harness.cache.DiskCachedRunner` result cache
  (versioned entries, atomic writes — see :mod:`repro.harness.cache`);
* progress and the final summary are emitted through the
  ``harness.sweep.*`` metrics of the :mod:`repro.obs` catalog.

Usage::

    from repro.harness.orchestrator import run_sweep

    summary = run_sweep(keys, base_config=config, workers=4)
    results = summary.results          # {RunKey: SimulationResult}
    print(summary.render())
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from collections import deque
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.harness.experiment import ExperimentRunner, RunKey
from repro.obs import catalog
from repro.obs.aggregate import (
    TaskTelemetry,
    TelemetryError,
    telemetry_from_payload,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.result import SimulationResult

#: Default number of retries after a failed first attempt.
DEFAULT_RETRIES = 2

#: Base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF = 0.25

#: Exit code an injected crash dies with (distinctive in reports).
_INJECTED_EXIT = 113


class SweepError(ReproError):
    """A sweep finished with tasks that exhausted their retries."""


@dataclasses.dataclass(frozen=True)
class FaultInjection:
    """Deterministic first-attempt failure, for tests and CI drills.

    The marker file records "already fired" across processes, so the
    injected failure hits exactly one attempt and the retry succeeds.
    """

    #: File created when the injection fires; its existence disarms it.
    marker_path: str
    #: ``crash`` (child ``os._exit``), ``raise`` (worker exception), or
    #: ``hang`` (sleep past the per-task timeout).
    mode: str = "crash"
    #: How long ``hang`` mode sleeps before proceeding normally.
    hang_seconds: float = 60.0

    def fire(self, inline: bool) -> None:
        """Fail this attempt if the marker does not exist yet."""
        try:
            fd = os.open(
                self.marker_path,
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return
        os.close(fd)
        if self.mode == "crash":
            if inline:
                # Degraded (in-process) execution must not kill the
                # orchestrator itself; surface the crash as an error.
                raise RuntimeError("injected crash (inline execution)")
            os._exit(_INJECTED_EXIT)
        if self.mode == "raise":
            raise RuntimeError("injected failure")
        time.sleep(self.hang_seconds)


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """Everything a worker needs to reproduce one run, self-contained."""

    key: RunKey
    #: The caller's *effective* base configuration; the worker replays
    #: the key against this exact config, not a default one.
    base_config: SystemConfig
    #: Shared on-disk result cache directory (None: no disk cache).
    cache_dir: str | None = None
    #: Observability artifact export directory (None: no export).
    artifacts_dir: str | None = None
    injection: FaultInjection | None = None
    #: Record spans + metrics in the worker and ship them back to the
    #: orchestrator.  Observed runs always simulate fresh (the disk
    #: cache stores result summaries, not spans), so ``cache_dir`` is
    #: bypassed while observing.
    observe: bool = False
    #: Directory oversized telemetry payloads spill into as artifact
    #: files instead of travelling over the result pipe.
    telemetry_dir: str | None = None


def execute_task_observed(
    task: SweepTask, inline: bool = True
) -> Tuple[SimulationResult, TaskTelemetry | None]:
    """Run one task; returns its result plus telemetry if observed.

    Telemetry comes from exactly this attempt's fresh
    :class:`~repro.obs.RunObservation` — a retried task therefore
    carries only the successful attempt's counters, never a partial
    double-count from failed attempts.
    """
    if task.injection is not None:
        task.injection.fire(inline)
    if task.observe:
        runner = ExperimentRunner(
            base_config=task.base_config,
            scale=task.key.scale,
            artifacts_dir=task.artifacts_dir,
            observe=True,
        )
    elif task.cache_dir is not None:
        from repro.harness.cache import DiskCachedRunner

        runner: ExperimentRunner = DiskCachedRunner(
            task.cache_dir,
            base_config=task.base_config,
            scale=task.key.scale,
            artifacts_dir=task.artifacts_dir,
        )
    else:
        runner = ExperimentRunner(
            base_config=task.base_config,
            scale=task.key.scale,
            artifacts_dir=task.artifacts_dir,
        )
    started = time.perf_counter()
    result = runner.run(task.key)
    wall = time.perf_counter() - started
    telemetry = None
    if task.observe and runner.last_observation is not None:
        telemetry = TaskTelemetry.from_observation(
            task_id=_task_id(task.key),
            workload=task.key.workload,
            policy=task.key.policy,
            observation=runner.last_observation,
            dropped_events=int(
                result.details.get("dropped_events", 0) or 0
            ),
            wall_seconds=wall,
        )
    return result, telemetry


def execute_task(task: SweepTask, inline: bool = True) -> SimulationResult:
    """Run one task exactly as a sequential runner would."""
    return execute_task_observed(task, inline=inline)[0]


def _send_outcome(conn, payload) -> None:
    """Best-effort send to the parent; a dead pipe is not our problem
    (the parent already classifies a silent child as a crash)."""
    try:
        conn.send(payload)
    except (OSError, ValueError, TypeError):
        pass


def _worker_main(task: SweepTask, conn) -> None:
    """Child-process entry point: run the task, ship the outcome.

    A success is reported as ``("ok", (result, telemetry_payload))``
    where the payload is None for unobserved tasks, an inline dict for
    small telemetry, or a spill-file reference for large traces (see
    :mod:`repro.obs.aggregate`).  Task failures are reported over the
    pipe as ``("error", tb)``.  Cancellation (KeyboardInterrupt/
    SystemExit) is reported too but then re-raised so the child dies
    with a nonzero exit status instead of masquerading as a clean run.
    """
    try:
        result, telemetry = execute_task_observed(task, inline=False)
        payload = None
        if telemetry is not None:
            payload = telemetry.to_payload(task.telemetry_dir)
        _send_outcome(conn, ("ok", (result, payload)))
    except Exception:
        _send_outcome(conn, ("error", traceback.format_exc()))
    except BaseException:
        _send_outcome(conn, ("error", traceback.format_exc()))
        raise
    finally:
        conn.close()


@dataclasses.dataclass
class TaskAttempt:
    """One attempt at one task."""

    outcome: str  # "ok" | "error" | "crash" | "timeout"
    duration: float
    error: str = ""


@dataclasses.dataclass
class TaskReport:
    """Full attempt history of one task."""

    key: RunKey
    attempts: List[TaskAttempt] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].outcome == "ok"

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)


def result_digest(result: SimulationResult) -> str:
    """Stable hash of everything the figures consume from a result.

    Two runs with equal digests are bit-identical in cycles, counters,
    and latency breakdown — the equivalence the CI sweep smoke checks.
    """
    from repro.harness.cache import _serialize

    payload = json.dumps(_serialize(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _task_id(key: RunKey) -> str:
    # simlint: ignore[GRIT-F001]  (display name, not a result digest)
    digest = hashlib.sha1(repr(key).encode("utf-8")).hexdigest()[:8]
    return f"{key.workload}/{key.policy}-{digest}"


@dataclasses.dataclass
class SweepSummary:
    """Results plus the fault-tolerance story of one sweep."""

    results: Dict[RunKey, SimulationResult]
    reports: List[TaskReport]
    workers: int
    elapsed: float
    #: Per-task observability shipped back by observed workers, keyed
    #: like ``results``; populated only for ``observe=True`` tasks and
    #: always from the successful attempt alone.
    telemetry: Dict[RunKey, TaskTelemetry] = dataclasses.field(
        default_factory=dict
    )

    @property
    def tasks(self) -> int:
        return len(self.reports)

    @property
    def completed(self) -> int:
        return sum(1 for report in self.reports if report.ok)

    @property
    def failures(self) -> int:
        return sum(1 for report in self.reports if not report.ok)

    @property
    def retries(self) -> int:
        return sum(report.retries for report in self.reports)

    def _attempt_count(self, outcome: str) -> int:
        return sum(
            1
            for report in self.reports
            for attempt in report.attempts
            if attempt.outcome == outcome
        )

    @property
    def timeouts(self) -> int:
        return self._attempt_count("timeout")

    @property
    def crashes(self) -> int:
        return self._attempt_count("crash")

    def failed_keys(self) -> List[RunKey]:
        return [report.key for report in self.reports if not report.ok]

    def render(self) -> str:
        """Human-readable sweep summary."""
        lines = [
            f"sweep: {self.tasks} tasks, {self.completed} completed, "
            f"{self.failures} failed in {self.elapsed:.1f}s "
            f"(workers={self.workers})",
            f"  retries={self.retries} timeouts={self.timeouts} "
            f"crashes={self.crashes}",
        ]
        for report in self.reports:
            if not report.attempts or (
                report.ok and len(report.attempts) == 1
            ):
                continue
            history = ",".join(a.outcome for a in report.attempts)
            lines.append(f"  {_task_id(report.key)}: {history}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly view (``repro sweep --summary-json``)."""
        return {
            "tasks": self.tasks,
            "completed": self.completed,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "workers": self.workers,
            "elapsed": self.elapsed,
            "results": {
                _task_id(key): {
                    "workload": key.workload,
                    "policy": key.policy,
                    "total_cycles": result.total_cycles,
                    "digest": result_digest(result),
                }
                for key, result in sorted(
                    self.results.items(), key=lambda kv: _task_id(kv[0])
                )
            },
        }


@dataclasses.dataclass
class _InFlight:
    task: SweepTask
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: "multiprocessing.connection.Connection"
    started: float
    deadline: float | None
    result: SimulationResult | None = None
    telemetry: TaskTelemetry | None = None


class SweepOrchestrator:
    """Schedules :class:`SweepTask` lists with retry and isolation.

    ``retries`` is the number of *re*-attempts after a failed first
    try; ``timeout`` is the per-attempt wall-clock budget in seconds
    (None: unlimited); ``backoff`` is the base of the exponential
    retry delay.  ``progress`` receives one line per terminal task
    event; metrics land in ``registry`` (a fresh sweep registry from
    the obs catalog by default).
    """

    def __init__(
        self,
        workers: int | None = None,
        timeout: float | None = None,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        registry: MetricsRegistry | None = None,
        progress: Callable[[str], None] | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.registry = registry or catalog.build_sweep_registry()
        self.progress = progress
        self.mp_context = mp_context
        self._samples = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> SweepSummary:
        """Execute every task; never raises on task failure."""
        unique: List[SweepTask] = []
        seen = set()
        for task in tasks:
            if task.key not in seen:
                seen.add(task.key)
                unique.append(task)
        started = time.monotonic()
        self.registry.inc(catalog.SWEEP_TASKS, len(unique))
        reports = {task.key: TaskReport(key=task.key) for task in unique}
        results: Dict[RunKey, SimulationResult] = {}
        telemetry: Dict[RunKey, TaskTelemetry] = {}
        requested = self.workers
        if requested is None:
            requested = os.cpu_count() or 1
        # Process isolation is decided by the *requested* parallelism:
        # a one-task sweep with workers=2 still runs in a worker so a
        # crash or timeout cannot take down the orchestrator.
        workers = max(1, min(requested, len(unique) or 1))
        if requested <= 1:
            self._run_inline(unique, results, reports, telemetry)
        else:
            try:
                self._run_pooled(
                    unique, results, reports, telemetry, workers
                )
            except (OSError, ImportError) as error:
                # Platforms without working process support: degrade to
                # inline execution for everything not yet resolved.
                self._emit(
                    f"process pool unavailable ({error}); "
                    f"running inline"
                )
                workers = 1
                remaining = [
                    task for task in unique if task.key not in results
                ]
                for key in list(reports):
                    if key not in results:
                        reports[key].attempts.clear()
                self._run_inline(remaining, results, reports, telemetry)
        summary = SweepSummary(
            results=results,
            reports=[reports[task.key] for task in unique],
            workers=workers,
            elapsed=time.monotonic() - started,
            telemetry=telemetry,
        )
        return summary

    # ------------------------------------------------------------------
    # inline (degraded) execution
    # ------------------------------------------------------------------

    def _run_inline(
        self,
        tasks: Sequence[SweepTask],
        results: Dict[RunKey, SimulationResult],
        reports: Dict[RunKey, TaskReport],
        telemetry: Dict[RunKey, TaskTelemetry],
    ) -> None:
        for task in tasks:
            for attempt in range(1, self.retries + 2):
                begin = time.monotonic()
                try:
                    result, observed = execute_task_observed(
                        task, inline=True
                    )
                except Exception:
                    self._record(
                        reports[task.key],
                        TaskAttempt(
                            outcome="error",
                            duration=time.monotonic() - begin,
                            error=traceback.format_exc(),
                        ),
                        will_retry=attempt <= self.retries,
                    )
                    if attempt <= self.retries:
                        time.sleep(self._delay(attempt))
                        continue
                    break
                results[task.key] = result
                if observed is not None:
                    telemetry[task.key] = observed
                    self._record_telemetry(observed)
                self._record(
                    reports[task.key],
                    TaskAttempt(
                        outcome="ok",
                        duration=time.monotonic() - begin,
                    ),
                    will_retry=False,
                )
                break

    # ------------------------------------------------------------------
    # pooled execution
    # ------------------------------------------------------------------

    def _run_pooled(
        self,
        tasks: Sequence[SweepTask],
        results: Dict[RunKey, SimulationResult],
        reports: Dict[RunKey, TaskReport],
        telemetry: Dict[RunKey, TaskTelemetry],
        workers: int,
    ) -> None:
        ctx = self.mp_context or multiprocessing.get_context()
        pending: deque[Tuple[SweepTask, int]] = deque(
            (task, 1) for task in tasks
        )
        delayed: List[Tuple[float, SweepTask, int]] = []
        running: Dict[RunKey, _InFlight] = {}
        while pending or delayed or running:
            now = time.monotonic()
            if delayed:
                ready = [
                    item for item in delayed if item[0] <= now
                ]
                for item in ready:
                    delayed.remove(item)
                    pending.append((item[1], item[2]))
            while pending and len(running) < workers:
                task, attempt = pending.popleft()
                running[task.key] = self._spawn(ctx, task, attempt)
            self._wait(running, delayed)
            for key in list(running):
                flight = running[key]
                outcome = self._poll(flight)
                if outcome is None:
                    continue
                del running[key]
                self._resolve(
                    flight, outcome, results, reports, telemetry,
                    delayed,
                )

    def _spawn(
        self,
        ctx: multiprocessing.context.BaseContext,
        task: SweepTask,
        attempt: int,
    ) -> _InFlight:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(task, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = None if self.timeout is None else now + self.timeout
        return _InFlight(
            task=task,
            attempt=attempt,
            process=process,
            conn=parent_conn,
            started=now,
            deadline=deadline,
        )

    def _wait(
        self,
        running: Dict[RunKey, _InFlight],
        delayed: List[Tuple[float, SweepTask, int]],
    ) -> None:
        """Block until a worker speaks, dies, or a deadline nears."""
        if not running:
            if delayed:
                horizon = min(item[0] for item in delayed)
                time.sleep(
                    min(0.5, max(0.0, horizon - time.monotonic()))
                )
            return
        budget = 0.5
        now = time.monotonic()
        for flight in running.values():
            if flight.deadline is not None:
                budget = min(budget, max(0.0, flight.deadline - now))
        for item in delayed:
            budget = min(budget, max(0.0, item[0] - now))
        sentinels = [flight.process.sentinel for flight in running.values()]
        conns = [flight.conn for flight in running.values()]
        multiprocessing.connection.wait(
            conns + sentinels, timeout=budget
        )

    def _poll(self, flight: _InFlight) -> TaskAttempt | None:
        """Terminal outcome of an in-flight attempt, if it has one."""
        now = time.monotonic()
        if flight.conn.poll():
            try:
                kind, payload = flight.conn.recv()
            except (EOFError, OSError):
                return self._reap_dead(flight, now)
            flight.process.join(timeout=5.0)
            flight.conn.close()
            if kind == "ok":
                result, tel_payload = payload
                flight.result = result
                if tel_payload is not None:
                    try:
                        flight.telemetry = telemetry_from_payload(
                            tel_payload
                        )
                    except TelemetryError as error:
                        # Telemetry is best-effort side data; a decode
                        # failure must not fail the (successful) task.
                        self._emit(
                            f"{_task_id(flight.task.key)}: telemetry "
                            f"dropped ({error})"
                        )
                return TaskAttempt(
                    outcome="ok", duration=now - flight.started
                )
            return TaskAttempt(
                outcome="error",
                duration=now - flight.started,
                error=str(payload),
            )
        if not flight.process.is_alive():
            return self._reap_dead(flight, now)
        if flight.deadline is not None and now >= flight.deadline:
            self._kill(flight)
            return TaskAttempt(
                outcome="timeout",
                duration=now - flight.started,
                error=f"exceeded {self.timeout}s",
            )
        return None

    def _reap_dead(self, flight: _InFlight, now: float) -> TaskAttempt:
        flight.process.join(timeout=5.0)
        flight.conn.close()
        code = flight.process.exitcode
        return TaskAttempt(
            outcome="crash",
            duration=now - flight.started,
            error=f"worker died with exit code {code}",
        )

    def _kill(self, flight: _InFlight) -> None:
        flight.process.terminate()
        flight.process.join(timeout=1.0)
        if flight.process.is_alive():
            flight.process.kill()
            flight.process.join(timeout=5.0)
        flight.conn.close()

    def _resolve(
        self,
        flight: _InFlight,
        attempt: TaskAttempt,
        results: Dict[RunKey, SimulationResult],
        reports: Dict[RunKey, TaskReport],
        telemetry: Dict[RunKey, TaskTelemetry],
        delayed: List[Tuple[float, SweepTask, int]],
    ) -> None:
        key = flight.task.key
        if attempt.outcome == "ok":
            assert flight.result is not None
            results[key] = flight.result
            # Only the successful attempt carries telemetry (failed
            # attempts never ship any), so a retried task contributes
            # exactly one clean run's counters to the aggregate.
            if flight.telemetry is not None:
                telemetry[key] = flight.telemetry
                self._record_telemetry(flight.telemetry)
            self._record(reports[key], attempt, will_retry=False)
            return
        will_retry = flight.attempt <= self.retries
        self._record(reports[key], attempt, will_retry=will_retry)
        if will_retry:
            delayed.append(
                (
                    time.monotonic() + self._delay(flight.attempt),
                    flight.task,
                    flight.attempt + 1,
                )
            )

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------

    def _delay(self, attempt: int) -> float:
        return self.backoff * (2 ** (attempt - 1))

    def _record(
        self, report: TaskReport, attempt: TaskAttempt, will_retry: bool
    ) -> None:
        report.attempts.append(attempt)
        registry = self.registry
        if attempt.outcome == "ok":
            registry.inc(catalog.SWEEP_COMPLETED)
        elif attempt.outcome == "timeout":
            registry.inc(catalog.SWEEP_TIMEOUTS)
        elif attempt.outcome == "crash":
            registry.inc(catalog.SWEEP_CRASHES)
        if attempt.outcome != "ok":
            if will_retry:
                registry.inc(catalog.SWEEP_RETRIES)
            else:
                registry.inc(catalog.SWEEP_FAILURES)
        registry.sample(self._sample_ts())
        key = report.key
        status = attempt.outcome + (" -> retry" if will_retry else "")
        self._emit(
            f"{key.workload}/{key.policy} attempt "
            f"{len(report.attempts)}: {status} "
            f"({attempt.duration:.1f}s)"
        )

    def _record_telemetry(self, telemetry: TaskTelemetry) -> None:
        """Account one successful task's shipped telemetry.

        The sweep registry is wall-clock-domain by contract (like the
        retry/timeout counters); the telemetry object carries a
        wall_seconds field, which taints it as a whole, but every
        value counted below (span/drop counts, payload bytes) is a
        deterministic function of the simulated run.
        """
        registry = self.registry
        # simlint: ignore[GRIT-F001]  (see docstring)
        registry.inc(catalog.SWEEP_WORKER_SPANS, len(telemetry.spans))
        if telemetry.dropped_spans:
            # simlint: ignore[GRIT-F001]  (see docstring)
            registry.inc(
                catalog.SWEEP_WORKER_DROPPED_SPANS,
                telemetry.dropped_spans,
            )
        if telemetry.dropped_events:
            # simlint: ignore[GRIT-F001]  (see docstring)
            registry.inc(
                catalog.SWEEP_WORKER_DROPPED_EVENTS,
                telemetry.dropped_events,
            )
        if telemetry.payload_bytes:
            # simlint: ignore[GRIT-F001]  (see docstring)
            registry.inc(
                catalog.SWEEP_WORKER_TELEMETRY_BYTES,
                telemetry.payload_bytes,
            )
        if telemetry.spilled:
            registry.inc(catalog.SWEEP_WORKER_SPILLS)

    def _sample_ts(self) -> int:
        self._samples += 1
        return self._samples

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def tasks_for(
    keys: Sequence[RunKey],
    base_config: SystemConfig | None = None,
    cache_dir: str | None = None,
    artifacts_dir: str | None = None,
    injections: Dict[RunKey, FaultInjection] | None = None,
    observe: bool = False,
    telemetry_dir: str | None = None,
) -> List[SweepTask]:
    """Wrap run keys into self-contained sweep tasks."""
    config = base_config or SystemConfig()
    injections = injections or {}
    return [
        SweepTask(
            key=key,
            base_config=config,
            cache_dir=cache_dir,
            artifacts_dir=artifacts_dir,
            injection=injections.get(key),
            observe=observe,
            telemetry_dir=telemetry_dir,
        )
        for key in keys
    ]


def run_sweep(
    keys: Sequence[RunKey],
    base_config: SystemConfig | None = None,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    cache_dir: str | None = None,
    artifacts_dir: str | None = None,
    injections: Dict[RunKey, FaultInjection] | None = None,
    registry: MetricsRegistry | None = None,
    progress: Callable[[str], None] | None = None,
    observe: bool = False,
    telemetry_dir: str | None = None,
) -> SweepSummary:
    """One-call resilient sweep over ``keys``; see the module docs."""
    orchestrator = SweepOrchestrator(
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        registry=registry,
        progress=progress,
    )
    return orchestrator.run(
        tasks_for(
            keys,
            base_config=base_config,
            cache_dir=cache_dir,
            artifacts_dir=artifacts_dir,
            injections=injections,
            observe=observe,
            telemetry_dir=telemetry_dir,
        )
    )


# ----------------------------------------------------------------------
# key-level front-end (the programmatic sweep API)
# ----------------------------------------------------------------------


def run_keys_parallel(
    keys: Sequence[RunKey],
    workers: int | None = None,
    base_config: SystemConfig | None = None,
    artifacts_dir: str | None = None,
    cache_dir: str | None = None,
) -> Dict[RunKey, SimulationResult]:
    """Simulate every key, fanning out across worker processes.

    ``workers`` defaults to the CPU count (capped by the number of
    keys).  With ``workers=1`` the sweep runs inline, which is also
    the fallback on platforms without process support.  Raises
    :class:`SweepError` if any key still fails after the
    orchestrator's retries.
    """
    summary = run_sweep(
        keys,
        base_config=base_config,
        workers=workers,
        cache_dir=cache_dir,
        artifacts_dir=artifacts_dir,
    )
    failed = summary.failed_keys()
    if failed:
        labels = ", ".join(
            f"{key.workload}/{key.policy}" for key in failed
        )
        raise SweepError(f"sweep failed for: {labels}")
    return dict(summary.results)


def warm_runner_parallel(
    runner: "ExperimentRunner",
    keys: Iterable[RunKey],
    workers: int | None = None,
) -> "ExperimentRunner":
    """Pre-populate a runner's cache using worker processes.

    The runner's own ``base_config``, ``artifacts_dir``, and (for a
    :class:`~repro.harness.cache.DiskCachedRunner`) disk cache
    directory are forwarded to the workers, so the warmed cache holds
    exactly what sequential ``runner.run`` calls would have produced.
    After warming, every figure function that only touches ``keys``
    serves from cache — the pattern for fast whole-report regeneration:

        runner = ExperimentRunner(scale=0.25)
        warm_runner_parallel(runner, all_keys)
        write_report("REPORT.md", runner=runner)
    """
    results = run_keys_parallel(
        list(keys),
        workers=workers,
        base_config=runner.base_config,
        artifacts_dir=runner.artifacts_dir,
        cache_dir=getattr(runner, "cache_dir", None),
    )
    runner._cache.update(results)
    return runner


def headline_keys(runner: "ExperimentRunner") -> List[RunKey]:
    """The run set behind Figures 1/17/18/19 — the usual warm-up."""
    from repro.harness.experiment import PAPER_APPS

    policies = (
        "on_touch",
        "access_counter",
        "duplication",
        "grit",
        "ideal",
    )
    return [
        runner.key(app, policy)
        for app in PAPER_APPS
        for policy in policies
    ]

"""Experiment runner with per-process result caching.

Every figure slices the same underlying (workload, policy, config) runs,
so the runner memoizes :class:`SimulationResult` objects by a hashable
:class:`RunKey`.  Benchmarks and the CLI share one runner per process to
avoid re-simulating identical configurations.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, Iterable, List, Tuple

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.policies.base import PlacementPolicy
from repro.prefetch import TreePrefetcher
from repro.sim import Engine, SimulationResult
from repro.workloads import make_workload

#: The eight Table II applications in the paper's figure order.
PAPER_APPS: Tuple[str, ...] = (
    "bfs",
    "bs",
    "c2d",
    "fir",
    "gemm",
    "mm",
    "sc",
    "st",
)

#: Default trace scale for figure regeneration: small enough that the
#: full evaluation sweep runs in minutes, large enough that every
#: mechanism (counters, groups, evictions) is exercised.
DEFAULT_SCALE = 0.3


@dataclasses.dataclass(frozen=True)
class RunKey:
    """Cache key for one simulation."""

    workload: str
    policy: str
    num_gpus: int = 4
    scale: float = DEFAULT_SCALE
    page_size: int = 4096
    fault_threshold: int = 4
    use_pa_cache: bool = True
    use_neighbor_prediction: bool = True
    max_group_pages: int = 512
    prefetch: bool = False
    #: GPU DRAM as a fraction of the footprint (Table I uses 0.70).
    dram_fraction: float = 0.70
    #: DRAM victim-selection policy ("lru" / "fifo" / "random").
    eviction_policy: str = "lru"
    #: Hardware access-counter threshold (Table I uses 256).
    counter_threshold: int = 256


class ExperimentRunner:
    """Runs and caches simulations for figure regeneration.

    With ``artifacts_dir`` set, every simulated run also exports its
    observability artifacts — a Chrome trace-event JSON and a metrics
    JSON-lines file per (workload, policy) — under that directory.
    """

    def __init__(
        self,
        base_config: SystemConfig | None = None,
        scale: float = DEFAULT_SCALE,
        artifacts_dir: str | None = None,
        observe: bool = False,
    ) -> None:
        self.base_config = base_config or SystemConfig()
        self.scale = scale
        self.artifacts_dir = artifacts_dir
        #: Attach a :class:`~repro.obs.RunObservation` to every fresh
        #: simulation even without an artifacts directory; the sweep
        #: workers use this to ship telemetry back to the orchestrator.
        self.observe = observe
        #: The observation of the most recent *fresh* simulation
        #: (None after a cache hit — cached results carry no spans).
        self.last_observation = None
        self._cache: Dict[RunKey, SimulationResult] = {}

    def run(self, key: RunKey) -> SimulationResult:
        """Fetch (simulating on first use) the result for ``key``."""
        cached = self._cache.get(key)
        if cached is not None:
            self.last_observation = None
            return cached
        from repro.constants import EvictionPolicy

        config = self.base_config.replace(
            num_gpus=key.num_gpus,
            page_size=key.page_size,
            dram_footprint_fraction=key.dram_fraction,
            eviction_policy=EvictionPolicy(key.eviction_policy),
            access_counter_threshold=key.counter_threshold,
            grit=dataclasses.replace(
                self.base_config.grit,
                fault_threshold=key.fault_threshold,
                use_pa_cache=key.use_pa_cache,
                use_neighbor_prediction=key.use_neighbor_prediction,
                max_group_pages=key.max_group_pages,
            ),
        )
        trace = make_workload(
            key.workload, num_gpus=key.num_gpus, scale=key.scale
        )
        policy = self._build_policy(key)
        prefetcher = TreePrefetcher() if key.prefetch else None
        observation = None
        if self.artifacts_dir is not None or self.observe:
            from repro.obs import RunObservation

            observation = RunObservation()
        engine = Engine(
            config,
            trace,
            policy,
            prefetcher=prefetcher,
            observation=observation,
        )
        result = engine.run()
        if observation is not None and self.artifacts_dir is not None:
            self._export_artifacts(key, result, observation)
        self.last_observation = observation
        self._cache[key] = result
        return result

    def _export_artifacts(self, key: RunKey, result, observation) -> None:
        import hashlib
        import os

        assert self.artifacts_dir is not None
        os.makedirs(self.artifacts_dir, exist_ok=True)
        # Variant keys (threshold sweeps, ...) share workload/policy
        # names; a stable digest keeps their artifacts distinct.
        digest = hashlib.sha1(repr(key).encode()).hexdigest()[:8]
        stem = f"{key.workload}-{key.policy}-{key.num_gpus}g-{digest}"
        observation.write_trace(
            os.path.join(self.artifacts_dir, f"{stem}.trace.json"),
            metadata={"workload": key.workload, "policy": key.policy},
        )
        observation.write_metrics(
            os.path.join(self.artifacts_dir, f"{stem}.metrics.jsonl")
        )

    def _build_policy(self, key: RunKey) -> PlacementPolicy:
        is_variant = not (
            key.use_pa_cache
            and key.use_neighbor_prediction
            and key.fault_threshold == 4
            and key.max_group_pages == 512
        )
        if key.policy == "grit" and is_variant:
            from repro.config import GritConfig
            from repro.policies.grit_policy import GritPolicy

            return GritPolicy(
                grit_config=GritConfig(
                    fault_threshold=key.fault_threshold,
                    use_pa_cache=key.use_pa_cache,
                    use_neighbor_prediction=key.use_neighbor_prediction,
                    max_group_pages=key.max_group_pages,
                )
            )
        return make_policy(key.policy)

    def dropped_event_total(self) -> int:
        """Events dropped by saturated event logs across cached runs.

        Non-zero only when runs were observed (an event log was
        attached) and overflowed; the report surfaces it so truncated
        observability data is never mistaken for a complete record.
        """
        return sum(
            int(result.details.get("dropped_events", 0) or 0)
            for result in self._cache.values()
        )

    def key(self, workload: str, policy: str, **overrides: object) -> RunKey:
        """Build a key with this runner's default scale."""
        params: dict[str, object] = {"scale": self.scale}
        params.update(overrides)
        return RunKey(  # type: ignore[arg-type]
            workload=workload, policy=policy, **params
        )

    def speedup(
        self, workload: str, policy: str, baseline: str, **overrides: object
    ) -> float:
        """Speedup of ``policy`` over ``baseline`` on one workload."""
        result = self.run(self.key(workload, policy, **overrides))
        base = self.run(self.key(workload, baseline, **overrides))
        return result.speedup_over(base)

    def speedups(
        self,
        policy: str,
        baseline: str,
        workloads: Iterable[str] = PAPER_APPS,
        **overrides: object,
    ) -> Dict[str, float]:
        """Per-workload speedups of ``policy`` over ``baseline``."""
        return {
            workload: self.speedup(workload, policy, baseline, **overrides)
            for workload in workloads
        }


def geometric_mean(values: Iterable[float]) -> float:
    """Geomean helper (paper averages are reported as single numbers)."""
    data: List[float] = list(values)
    if not data:
        raise ValueError("no values to average")
    return statistics.geometric_mean(data)

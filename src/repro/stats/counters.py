"""Event counters: faults, migrations, duplications, scheme usage.

These back Figures 18 (page fault counts) and 19 (the per-scheme share
of accesses that miss the L2 TLB under GRIT), plus auxiliary counts the
comparison sections report (evictions for the GPS study, migration
counts for Griffin).
"""

from __future__ import annotations

from typing import Dict

from repro.constants import FaultKind, Scheme


class EventCounters:
    """Simulation-wide event counts."""

    def __init__(self) -> None:
        self.accesses = 0
        self.reads = 0
        self.writes = 0
        self.l2_tlb_misses = 0
        self.local_page_faults = 0
        self.protection_faults = 0
        self.migrations = 0
        self.duplications = 0
        self.write_collapses = 0
        self.evictions = 0
        self.remote_accesses = 0
        self.scheme_changes = 0
        self.group_promotions = 0
        self.group_degradations = 0
        self.prefetches = 0
        #: Fault batches drained through the batched service path
        #: (zero when ``fault_batch_size`` is 1: the inline path never
        #: forms batches).
        self.fault_batches = 0
        #: Duplicate (gpu, vpn) deposits coalesced away during batch
        #: drains; each saved a redundant fault resolution.
        self.coalesced_faults = 0
        #: Steady-state runs priced by the vectorized fast path (see
        #: repro.sim.fastpath); zero when the fast path is off.
        self.fastpath_runs = 0
        #: Accesses those runs covered.  ``accesses -
        #: fastpath_accesses`` went through the scalar pipeline.
        self.fastpath_accesses = 0
        #: Accesses that missed the L2 TLB, bucketed by the scheme the
        #: touched page was using at that moment (Figure 19).
        self.scheme_usage: Dict[Scheme, int] = {s: 0 for s in Scheme}
        #: Faults attributed to the requesting GPU (imbalance analysis).
        self.per_gpu_faults: Dict[int, int] = {}

    @property
    def total_faults(self) -> int:
        """Local page faults + page protection faults (Figure 18)."""
        return self.local_page_faults + self.protection_faults

    def record_access(self, is_write: bool) -> None:
        """Tally one data access."""
        self.accesses += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1

    def record_fault(self, kind: FaultKind, gpu: int | None = None) -> None:
        """Tally one UVM fault, optionally attributed to a GPU."""
        if kind is FaultKind.LOCAL_PAGE_FAULT:
            self.local_page_faults += 1
        else:
            self.protection_faults += 1
        if gpu is not None:
            self.per_gpu_faults[gpu] = self.per_gpu_faults.get(gpu, 0) + 1

    def fault_imbalance(self) -> float:
        """Max-to-mean ratio of per-GPU fault counts (1.0 = balanced)."""
        if not self.per_gpu_faults:
            return 1.0
        counts = list(self.per_gpu_faults.values())
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    def record_scheme_usage(self, scheme: Scheme) -> None:
        """Tally one L2-TLB-missing access under its current scheme."""
        self.l2_tlb_misses += 1
        self.scheme_usage[scheme] += 1

    def scheme_usage_fractions(self) -> Dict[str, float]:
        """Scheme short-name -> fraction of L2-TLB-missing accesses."""
        total = sum(self.scheme_usage.values())
        if total == 0:
            return {scheme.short_name: 0.0 for scheme in Scheme}
        return {
            scheme.short_name: count / total
            for scheme, count in self.scheme_usage.items()
        }

    def as_dict(self) -> Dict[str, int]:
        """Flat integer view of every counter."""
        return {
            "accesses": self.accesses,
            "reads": self.reads,
            "writes": self.writes,
            "l2_tlb_misses": self.l2_tlb_misses,
            "local_page_faults": self.local_page_faults,
            "protection_faults": self.protection_faults,
            "total_faults": self.total_faults,
            "migrations": self.migrations,
            "duplications": self.duplications,
            "write_collapses": self.write_collapses,
            "evictions": self.evictions,
            "remote_accesses": self.remote_accesses,
            "scheme_changes": self.scheme_changes,
            "group_promotions": self.group_promotions,
            "group_degradations": self.group_degradations,
            "prefetches": self.prefetches,
            "fault_batches": self.fault_batches,
            "coalesced_faults": self.coalesced_faults,
            "fastpath_runs": self.fastpath_runs,
            "fastpath_accesses": self.fastpath_accesses,
        }

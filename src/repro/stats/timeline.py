"""Interval-based attribute timelines (Figures 5, 6/7/8, and 10).

The paper samples page behaviour at fixed intervals: per-GPU access
distributions for one page over time (Figure 5), read/write mix for one
page over time (Figure 10), and whole-address-space attribute maps over
50 execution intervals (Figures 6-8).  :class:`IntervalTimeline` records
``(interval, gpu, vpn, is_write)`` tallies compactly so the analysis
module can slice them any of those ways.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class IntervalSample:
    """Tallies for one (interval, page) pair."""

    reads: int
    writes: int
    per_gpu_accesses: Tuple[int, ...]


class IntervalTimeline:
    """Accumulates per-interval, per-page, per-GPU access tallies.

    ``interval_length`` is in the same unit the caller passes to
    :meth:`record` as ``time`` — the engine passes cycles, trace-level
    characterization passes access indices (a proxy for time that does
    not require simulation).
    """

    def __init__(self, num_gpus: int, interval_length: int) -> None:
        if interval_length <= 0:
            raise ValueError("interval length must be positive")
        self.num_gpus = num_gpus
        self.interval_length = interval_length
        #: (interval, vpn) -> [reads, writes, per-gpu counts...]
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._max_interval = -1

    def record(self, time: int, gpu: int, vpn: int, is_write: bool) -> None:
        """Tally one access into its (interval, page, GPU) cell."""
        interval = time // self.interval_length
        key = (interval, vpn)
        cell = self._cells.get(key)
        if cell is None:
            cell = [0, 0] + [0] * self.num_gpus
            self._cells[key] = cell
        cell[1 if is_write else 0] += 1
        cell[2 + gpu] += 1
        if interval > self._max_interval:
            self._max_interval = interval

    def record_bulk(
        self, interval: int, gpu: int, vpn: int, is_write: bool, count: int
    ) -> None:
        """Tally ``count`` same-kind accesses into one cell at once.

        Equivalent to ``count`` :meth:`record` calls that all land in
        ``interval`` — the steady-state fast path pre-groups its run
        by interval and page so the per-access dict probe disappears.
        """
        key = (interval, vpn)
        cell = self._cells.get(key)
        if cell is None:
            cell = [0, 0] + [0] * self.num_gpus
            self._cells[key] = cell
        cell[1 if is_write else 0] += count
        cell[2 + gpu] += count
        if interval > self._max_interval:
            self._max_interval = interval

    @property
    def num_intervals(self) -> int:
        """Intervals observed so far (highest seen + 1)."""
        return self._max_interval + 1

    def sample(self, interval: int, vpn: int) -> IntervalSample | None:
        """Tallies for one (interval, page) cell, or None."""
        cell = self._cells.get((interval, vpn))
        if cell is None:
            return None
        return IntervalSample(
            reads=cell[0],
            writes=cell[1],
            per_gpu_accesses=tuple(cell[2:]),
        )

    def page_timeline(self, vpn: int) -> List[IntervalSample | None]:
        """Figure 5 / Figure 10 view: one page across all intervals."""
        return [
            self.sample(interval, vpn)
            for interval in range(self.num_intervals)
        ]

    def pages_in_interval(self, interval: int) -> List[int]:
        """Pages touched during one interval, sorted."""
        return sorted(
            vpn for (ivl, vpn) in self._cells if ivl == interval
        )

    def touched_pages(self) -> List[int]:
        """Every page with at least one recorded access, sorted."""
        return sorted({vpn for (_, vpn) in self._cells})

    def sharing_label(self, interval: int, vpn: int) -> str | None:
        """Classify one page-interval as 'private' or 'shared'."""
        sample = self.sample(interval, vpn)
        if sample is None:
            return None
        touchers = sum(1 for count in sample.per_gpu_accesses if count)
        return "shared" if touchers > 1 else "private"

    def rw_label(self, interval: int, vpn: int) -> str | None:
        """Classify one page-interval as 'read' or 'read-write'."""
        sample = self.sample(interval, vpn)
        if sample is None:
            return None
        return "read-write" if sample.writes else "read"

"""Whole-run per-page access ledger.

Backs the Section IV characterization: private vs shared pages (a page
is *shared* when more than one GPU touched it during the entire run) and
read vs read-write pages (read-write when it saw at least one write),
plus the access-weighted versions of both splits (Figures 4 and 9).
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass
class PageLedgerEntry:
    """Access tallies for one page."""

    reads: int = 0
    writes: int = 0
    toucher_mask: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses to the page."""
        return self.reads + self.writes

    @property
    def num_touchers(self) -> int:
        """Distinct GPUs that accessed the page."""
        return bin(self.toucher_mask).count("1")

    @property
    def is_shared(self) -> bool:
        """More than one GPU touched the page (Figure 4 definition)."""
        return self.num_touchers > 1

    @property
    def is_read_write(self) -> bool:
        """At least one write hit the page (Figure 9 definition)."""
        return self.writes > 0


@dataclasses.dataclass(frozen=True)
class SharingSummary:
    """The Figure 4 / Figure 9 splits for one workload."""

    private_page_fraction: float
    shared_page_fraction: float
    private_access_fraction: float
    shared_access_fraction: float
    read_page_fraction: float
    read_write_page_fraction: float
    read_access_fraction: float
    read_write_access_fraction: float
    total_pages: int
    total_accesses: int


class PageAccessLedger:
    """Accumulates per-page read/write/toucher tallies for a run."""

    def __init__(self) -> None:
        self._entries: Dict[int, PageLedgerEntry] = {}

    def record(self, gpu: int, vpn: int, is_write: bool) -> None:
        """Tally one access into the per-page ledger."""
        entry = self._entries.get(vpn)
        if entry is None:
            entry = PageLedgerEntry()
            self._entries[vpn] = entry
        if is_write:
            entry.writes += 1
        else:
            entry.reads += 1
        entry.toucher_mask |= 1 << gpu

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, vpn: int) -> PageLedgerEntry | None:
        """Tallies for one page, or None if never touched."""
        return self._entries.get(vpn)

    def summary(self) -> SharingSummary:
        """Compute the page- and access-weighted private/shared and
        read/read-write splits."""
        total_pages = len(self._entries)
        total_accesses = 0
        shared_pages = 0
        shared_accesses = 0
        rw_pages = 0
        rw_accesses = 0
        for entry in self._entries.values():
            accesses = entry.accesses
            total_accesses += accesses
            if entry.is_shared:
                shared_pages += 1
                shared_accesses += accesses
            if entry.is_read_write:
                rw_pages += 1
                rw_accesses += accesses

        def frac(part: int, whole: int) -> float:
            """Safe ratio (0 when the denominator is 0)."""
            return part / whole if whole else 0.0

        return SharingSummary(
            private_page_fraction=frac(
                total_pages - shared_pages, total_pages
            ),
            shared_page_fraction=frac(shared_pages, total_pages),
            private_access_fraction=frac(
                total_accesses - shared_accesses, total_accesses
            ),
            shared_access_fraction=frac(shared_accesses, total_accesses),
            read_page_fraction=frac(total_pages - rw_pages, total_pages),
            read_write_page_fraction=frac(rw_pages, total_pages),
            read_access_fraction=frac(
                total_accesses - rw_accesses, total_accesses
            ),
            read_write_access_fraction=frac(rw_accesses, total_accesses),
            total_pages=total_pages,
            total_accesses=total_accesses,
        )

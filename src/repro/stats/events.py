"""Optional structured event log for fault-path debugging.

When attached to a driver, every fault resolution, migration,
duplication, collapse, and eviction is appended as an
:class:`Event` — the raw material for debugging a policy or for
building Figure-5-style views from *simulated* behaviour rather than
from the input trace.

Logging is off unless an :class:`EventLog` is installed, so the fast
path pays only a None check.
"""

from __future__ import annotations

import dataclasses
import enum
import warnings
from typing import Callable, Iterator, List


class EventKind(enum.Enum):
    """The machine events the log can record."""

    LOCAL_FAULT = "local_fault"
    PROTECTION_FAULT = "protection_fault"
    MIGRATION = "migration"
    DUPLICATION = "duplication"
    WRITE_COLLAPSE = "write_collapse"
    EVICTION = "eviction"
    SCHEME_CHANGE = "scheme_change"
    GROUP_PROMOTION = "group_promotion"
    GROUP_DEGRADATION = "group_degradation"
    PREFETCH = "prefetch"


@dataclasses.dataclass(frozen=True)
class Event:
    """One logged machine event."""

    kind: EventKind
    vpn: int
    gpu: int
    #: Event-specific detail: destination GPU for migrations, new scheme
    #: value for scheme changes, holders count for collapses, ...
    detail: int = 0
    #: Cycles the event charged (0 for background events).
    cycles: int = 0


class EventLog:
    """Bounded append-only event log."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[Event] = []
        self.dropped = 0
        #: Optional callback invoked with every event, including ones
        #: dropped for capacity (observability subscribes here).
        self.listener: Callable[[Event], None] | None = None

    def emit(
        self,
        kind: EventKind,
        vpn: int,
        gpu: int,
        detail: int = 0,
        cycles: int = 0,
    ) -> None:
        """Append one event (dropped past capacity, with a warning)."""
        event = Event(
            kind=kind, vpn=vpn, gpu=gpu, detail=detail, cycles=cycles
        )
        if self.listener is not None:
            self.listener(event)
        if len(self._events) >= self.capacity:
            if self.dropped == 0:
                warnings.warn(
                    f"EventLog is full ({self.capacity} events); further "
                    f"events are dropped — raise the capacity or filter "
                    f"earlier",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.dropped += 1
            return
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def filter(
        self,
        kind: EventKind | None = None,
        vpn: int | None = None,
        predicate: Callable[[Event], bool] | None = None,
    ) -> List[Event]:
        """Select events by kind, page, and/or a custom predicate."""
        selected = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if vpn is not None and event.vpn != vpn:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def counts(self) -> dict[str, int]:
        """Event tallies by kind."""
        tallies = {kind.value: 0 for kind in EventKind}
        for event in self._events:
            tallies[event.kind.value] += 1
        return tallies

    def page_history(self, vpn: int) -> List[Event]:
        """Every logged event touching one page, in order."""
        return self.filter(vpn=vpn)

"""Page-handling latency breakdown — the six categories of Figure 3.

Every cycle the engine charges for page handling is attributed to one of
the paper's categories: Local (page-table walk after an L2 TLB miss),
Host (UVM fault service), Page-migration, Remote-access,
Page-duplication (duplicate + eviction + re-duplication), and
Write-collapse.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.constants import LatencyCategory


class LatencyBreakdown:
    """Accumulator of page-handling cycles per category."""

    __slots__ = ("_cycles",)

    def __init__(self) -> None:
        self._cycles: Dict[LatencyCategory, int] = {
            category: 0 for category in LatencyCategory
        }

    def charge(self, category: LatencyCategory, cycles: int) -> None:
        """Attribute page-handling cycles to one category."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self._cycles[category] += cycles

    def cycles(self, category: LatencyCategory) -> int:
        """Cycles accumulated under one category."""
        return self._cycles[category]

    @property
    def total(self) -> int:
        """All page-handling cycles across categories."""
        return sum(self._cycles.values())

    def as_dict(self) -> Dict[str, int]:
        """Category label -> cycles, in Figure 3's legend order."""
        return {
            category.label: self._cycles[category]
            for category in LatencyCategory
        }

    def fractions(self) -> Dict[str, float]:
        """Category label -> fraction of the total (0 when total is 0)."""
        total = self.total
        if total == 0:
            return {category.label: 0.0 for category in LatencyCategory}
        return {
            category.label: self._cycles[category] / total
            for category in LatencyCategory
        }

    def merged_with(
        self, others: Iterable["LatencyBreakdown"]
    ) -> "LatencyBreakdown":
        """Sum of this breakdown and ``others`` (per-GPU -> system view)."""
        merged = LatencyBreakdown()
        for category in LatencyCategory:
            merged._cycles[category] = self._cycles[category]
        for other in others:
            for category in LatencyCategory:
                merged._cycles[category] += other._cycles[category]
        return merged

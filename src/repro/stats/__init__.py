"""Measurement infrastructure: latency breakdowns, counters, timelines."""

from repro.stats.counters import EventCounters
from repro.stats.latency import LatencyBreakdown
from repro.stats.sharing import PageAccessLedger
from repro.stats.timeline import IntervalTimeline

__all__ = [
    "EventCounters",
    "LatencyBreakdown",
    "PageAccessLedger",
    "IntervalTimeline",
]

"""System configuration for the trace-driven multi-GPU simulator.

The defaults reproduce Table I of the paper:

====================  =====================================================
Module                Configuration
====================  =====================================================
Compute Unit          1.0 GHz, 64 per GPU
L1 TLB                32 entries, 32-way (fully associative), 1-cycle
L2 TLB                512 entries, 16-way, 10-cycle, shared, LRU
Page table walk       8 shared walkers, 100-cycle latency per level
Page walk cache       128 entries shared across walkers
Page walk queue       64 entries
Access counter        threshold 256 at 64 KB granularity
DRAM                  70% of the application's memory footprint
Inter-GPU network     300 GB/s NVLink-v2
CPU-GPU network       32 GB/s PCIe-v4
====================  =====================================================

All latencies are expressed in 1 GHz core cycles (1 cycle == 1 ns).
Latencies that Table I does not pin down (fault service, flush, transfer
setup) are modeling choices documented on each field; their absolute
values shift absolute runtimes but the reproduction only relies on their
ordering (local << remote << fault << migration/collapse), which holds
across the plausible range (see tests/sim/test_sensitivity.py).
"""

from __future__ import annotations

import dataclasses
import math

from repro.constants import (
    ACCESS_COUNTER_GROUP_BYTES,
    ACCESS_COUNTER_THRESHOLD,
    DEFAULT_FAULT_THRESHOLD,
    PAGE_SIZE_4K,
    EvictionPolicy,
)
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class TLBConfig:
    """Geometry of one set-associative TLB level."""

    entries: int
    ways: int
    lookup_latency: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ConfigError("TLB entries and ways must be positive")
        if self.entries % self.ways != 0:
            raise ConfigError(
                f"TLB entries ({self.entries}) must be a multiple of "
                f"ways ({self.ways})"
            )
        if self.lookup_latency < 0:
            raise ConfigError("TLB lookup latency must be non-negative")

    @property
    def sets(self) -> int:
        """Number of sets (entries / ways)."""
        return self.entries // self.ways


@dataclasses.dataclass(frozen=True)
class WalkerConfig:
    """Page-table walker pool shared by a GPU's GMMU."""

    walkers: int = 8
    walk_queue_entries: int = 64
    walk_cache_entries: int = 128
    latency_per_level: int = 100
    levels: int = 4

    def __post_init__(self) -> None:
        if self.walkers <= 0:
            raise ConfigError("need at least one page-table walker")
        if self.walk_queue_entries <= 0:
            raise ConfigError("walk queue needs at least one entry")
        if self.levels <= 0:
            raise ConfigError("page table must have at least one level")
        if self.latency_per_level < 0:
            raise ConfigError("walk latency must be non-negative")

    @property
    def full_walk_latency(self) -> int:
        """Latency of a walk that misses the page-walk cache entirely."""
        return self.latency_per_level * self.levels

    @property
    def cached_walk_latency(self) -> int:
        """Latency when the walk cache covers all but the leaf level."""
        return self.latency_per_level


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Cycle costs charged by the engine for each event class.

    ``*_fixed`` values are per-event setup/latency charges; transfers add
    a serialization component derived from the link bandwidths.
    """

    #: Local GPU DRAM access (row hit averaged with misses).
    local_dram_access: int = 200
    #: Effective round-trip of a cache-line access to a remote GPU's
    #: DRAM over NVLink, including the translation/coherence serialization
    #: a far access cannot overlap.
    remote_dram_access: int = 1200
    #: Effective round-trip of a cache-line access to host memory over
    #: PCIe (counter-based migration leaves first-touched pages in
    #: system memory until the counter threshold fires, so these are the
    #: paper's "remote-access" overhead for under-threshold pages).
    host_remote_access: int = 2400
    #: MLP divisor for *far* accesses (NVLink peers and host memory):
    #: inter-device links sustain far fewer outstanding requests than
    #: the local DRAM path, so less of their latency is hidden.
    far_access_mlp: int = 2
    #: Fixed NVLink hop latency (request/response handshake).
    nvlink_latency: int = 700
    #: NVLink-v2 bandwidth in bytes/cycle (300 GB/s at 1 GHz).
    nvlink_bytes_per_cycle: float = 300.0
    #: Fixed PCIe round-trip latency (fault message to the UVM driver).
    pcie_latency: int = 1000
    #: PCIe-v4 bandwidth in bytes/cycle (32 GB/s at 1 GHz).
    pcie_bytes_per_cycle: float = 32.0
    #: UVM driver software fault-service time (interrupt, central page
    #: table walk, bookkeeping).  Real UVM services faults in tens of
    #: microseconds amortized over traces with thousands of accesses per
    #: page; our traces carry tens of accesses per page, so the fault
    #: cost is scaled to preserve the fault-to-access cost *ratio* the
    #: schemes trade off against (see DESIGN.md section 5).
    host_fault_service: int = 4_000
    #: Draining in-flight instructions and flushing caches/TLBs of one GPU
    #: before a migration or collapse (Section II-B1).
    pipeline_flush: int = 800
    #: Invalidating one GPU's PTE + TLB entries (shootdown + ack).
    invalidation_per_gpu: int = 600
    #: Memory-level-parallelism divisor applied to *data* access latency:
    #: massively threaded GPUs overlap ordinary loads/stores, but fault
    #: handling serializes the faulting warp.
    data_access_mlp: int = 8
    #: Extra latency per fault for a PA-Table access when no PA-Cache is
    #: present (memory access plus bandwidth contention; Section V-C).
    pa_table_memory_access: int = 800
    #: PA-Cache lookup cost; hidden under the page-table walk, charged
    #: only on the rare path where the walk would finish first.
    pa_cache_lookup: int = 4
    #: Fraction of flush/invalidation cost remaining when ACUD
    #: (asynchronous compute-unit draining, from Griffin) is enabled.
    acud_discount: float = 0.3
    #: Fraction of host fault-service cost remaining when Trans-FW's
    #: remote translation forwarding short-circuits the fault.
    transfw_discount: float = 0.75
    #: Per-subscriber cost of a GPS fine-grained store broadcast.
    gps_store_broadcast: int = 60

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, (int, float)) and value < 0:
                raise ConfigError(f"latency field {field.name} must be >= 0")
        if self.data_access_mlp < 1:
            raise ConfigError("data_access_mlp must be >= 1")
        if self.far_access_mlp < 1:
            raise ConfigError("far_access_mlp must be >= 1")
        if not 0.0 <= self.acud_discount <= 1.0:
            raise ConfigError("acud_discount must be within [0, 1]")
        if not 0.0 <= self.transfw_discount <= 1.0:
            raise ConfigError("transfw_discount must be within [0, 1]")

    def page_transfer_nvlink(self, page_size: int) -> int:
        """Cycles to move one page between GPUs over NVLink."""
        return self.nvlink_latency + math.ceil(
            page_size / self.nvlink_bytes_per_cycle
        )

    def page_transfer_pcie(self, page_size: int) -> int:
        """Cycles to move one page between host and GPU over PCIe."""
        return self.pcie_latency + math.ceil(
            page_size / self.pcie_bytes_per_cycle
        )

    def scaled_data_access(self, latency: int) -> int:
        """Apply the local MLP divisor to an ordinary data access."""
        return max(1, latency // self.data_access_mlp)

    def scaled_remote_access(self) -> int:
        """Effective per-access cost of a peer-GPU (NVLink) access."""
        return max(1, self.remote_dram_access // self.far_access_mlp)

    def scaled_host_remote_access(self) -> int:
        """Effective per-access cost of a host-remote (PCIe) access."""
        return max(1, self.host_remote_access // self.far_access_mlp)


@dataclasses.dataclass(frozen=True)
class GritConfig:
    """Knobs of the GRIT mechanism itself (Section V)."""

    #: Local + protection faults needed to trigger a scheme change.
    fault_threshold: int = DEFAULT_FAULT_THRESHOLD
    #: PA-Cache geometry (64 entries, 4-way in the paper).
    pa_cache_entries: int = 64
    pa_cache_ways: int = 4
    #: Enable the hardware PA-Cache in front of the PA-Table.
    use_pa_cache: bool = True
    #: Enable Neighboring-Aware Prediction (group promotion/propagation).
    use_neighbor_prediction: bool = True
    #: Maximum group size in pages (512 == one 2 MB page-table page).
    max_group_pages: int = 512

    def __post_init__(self) -> None:
        if self.fault_threshold < 1:
            raise ConfigError("fault threshold must be >= 1")
        if self.pa_cache_entries <= 0 or self.pa_cache_ways <= 0:
            raise ConfigError("PA-Cache geometry must be positive")
        if self.pa_cache_entries % self.pa_cache_ways != 0:
            raise ConfigError("PA-Cache entries must be a multiple of ways")
        if self.max_group_pages not in (1, 8, 64, 512):
            raise ConfigError("max_group_pages must be one of 1/8/64/512")


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Complete multi-GPU system configuration (Table I defaults)."""

    num_gpus: int = 4
    page_size: int = PAGE_SIZE_4K
    #: GPU memory sized to this fraction of the application footprint,
    #: split evenly across GPUs, to model oversubscription (Table I).
    dram_footprint_fraction: float = 0.70
    l1_tlb: TLBConfig = TLBConfig(entries=32, ways=32, lookup_latency=1)
    l2_tlb: TLBConfig = TLBConfig(entries=512, ways=16, lookup_latency=10)
    walker: WalkerConfig = WalkerConfig()
    latency: LatencyModel = LatencyModel()
    grit: GritConfig = GritConfig()
    access_counter_threshold: int = ACCESS_COUNTER_THRESHOLD
    access_counter_group_bytes: int = ACCESS_COUNTER_GROUP_BYTES
    #: DRAM victim selection under oversubscription (Table I runs LRU).
    eviction_policy: EvictionPolicy = EvictionPolicy.LRU
    #: Cycles between successive memory operations of one GPU stream;
    #: stands in for the compute between memory instructions.
    issue_gap: int = 4
    #: Local page faults the UVM driver services per batch.  At the
    #: default of 1 every fault is serviced inline at the faulting
    #: access, reproducing the classic simulator bit-for-bit.  Larger
    #: values model the real driver's replayable fault buffer: faults
    #: park per-GPU while other warps keep issuing, then drain as one
    #: batch that pays a single host round trip and coalesces
    #: duplicate (gpu, vpn) entries (see docs/architecture.md).
    fault_batch_size: int = 1
    #: Validate UVM machine-state invariants after every driver
    #: operation (see repro.uvm.sanitizer).  Slow; debugging only.  The
    #: ``GRIT_SANITIZE=1`` environment variable enables it globally.
    sanitize: bool = False
    #: Record spans, metrics, and events while simulating (see
    #: repro.obs).  Off by default with zero fast-path cost.  The
    #: ``GRIT_TRACE=1`` environment variable enables it globally.
    observe: bool = False
    #: Interconnect/DRAM contention mode of the timing kernel (see
    #: repro.sim.timing).  ``"none"`` charges the flat latency-model
    #: costs (bit-for-bit the classic simulator); ``"queued"`` makes
    #: every link and DRAM channel a contended resource with
    #: ``busy_until`` occupancy and queueing delay.  The
    #: ``GRIT_CONTENTION=queued`` environment variable overrides it
    #: globally.
    contention: str = "none"
    #: Interconnect fabric shape (see repro.interconnect.routing).
    #: ``"all-to-all"`` is the paper's 4-GPU DGX-style mesh (bit-for-
    #: bit the classic simulator); ``"nvswitch[:group_size]"``,
    #: ``"ring"``, and ``"multi-node[:nodes]"`` are scale-out shapes
    #: where GPU pairs route over multiple contended hops.  The
    #: ``GRIT_TOPOLOGY`` environment variable overrides it globally.
    topology: str = "all-to-all"
    #: Vectorized steady-state fast path of the engine (see
    #: repro.sim.fastpath).  When on, runs of accesses that all hit
    #: already-resident, already-translated local pages are priced in
    #: one numpy step instead of one Python trip each — bit-for-bit
    #: identical results, much faster replay.  Automatically disabled
    #: under ``contention="queued"`` (reservations are order-
    #: sensitive).  The ``GRIT_FAST_PATH=0/1`` environment variable
    #: overrides it globally.
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError("need at least one GPU")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigError("page size must be a positive power of two")
        if not 0.0 < self.dram_footprint_fraction <= 1.0:
            raise ConfigError("dram_footprint_fraction must be in (0, 1]")
        if self.access_counter_threshold < 1:
            raise ConfigError("access counter threshold must be >= 1")
        if self.access_counter_group_bytes < PAGE_SIZE_4K:
            raise ConfigError(
                "access counter group must be at least one 4 KB page"
            )
        if self.issue_gap < 0:
            raise ConfigError("issue_gap must be non-negative")
        if self.fault_batch_size < 1:
            raise ConfigError("fault_batch_size must be >= 1")
        if self.contention not in ("none", "queued"):
            raise ConfigError(
                f"contention must be 'none' or 'queued', "
                f"got {self.contention!r}"
            )
        # Deferred import: the interconnect package imports this
        # module at load time.
        from repro.interconnect.routing import TopologySpec

        TopologySpec.parse(self.topology, self.num_gpus)

    @property
    def pages_per_counter_group(self) -> int:
        """4 KB pages covered by one access-counter group (16 for 64 KB)."""
        return max(1, self.access_counter_group_bytes // self.page_size)

    def dram_frames_per_gpu(self, footprint_pages: int) -> int:
        """Per-GPU frame budget for an application footprint.

        Table I sizes total GPU DRAM to 70% of the footprint; the budget
        is split evenly across GPUs and never drops below one frame.
        """
        if footprint_pages <= 0:
            raise ConfigError("footprint must be positive")
        total = int(footprint_pages * self.dram_footprint_fraction)
        return max(1, total // self.num_gpus)

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Flatten to JSON-friendly types (for stamping result records)."""
        data = dataclasses.asdict(self)
        data["eviction_policy"] = self.eviction_policy.value
        return data


#: Ready-made Table I configuration (4 GPUs, 4 KB pages).
BASELINE_CONFIG = SystemConfig()

"""Prefetching add-ons (tree-based neighborhood prefetching)."""

from repro.prefetch.tree import TreePrefetcher

__all__ = ["TreePrefetcher"]

"""Tree-based neighborhood prefetching (Ganguly et al.; Section VI-E).

The CUDA driver's prefetcher maintains full binary trees whose leaf
nodes are 64 KB basic blocks and whose roots correspond to 2 MB regions.
It tracks, per GPU, how much of each tree node is already resident on
that GPU; when a GPU's occupancy of a non-leaf node exceeds 50% of the
node's capacity, the remaining leaf blocks under that node are
prefetched to the GPU.

With 4 KB pages a leaf is 16 pages and a root spans 512 pages, giving a
tree of 32 leaves (63 heap-indexed nodes).  Prefetches ride the
background PCIe queue: they charge no stall cycles but consume frames
and bandwidth, and only host-resident pages are eligible (the prefetcher
never steals pages from other GPUs).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.uvm.driver import UvmDriver

#: Pages per 2 MB region and per 64 KB leaf block (4 KB base pages).
REGION_PAGES = 512
LEAF_PAGES = 16
NUM_LEAVES = REGION_PAGES // LEAF_PAGES
#: Heap index of the first leaf (1-indexed full binary tree).
FIRST_LEAF = NUM_LEAVES


class TreePrefetcher:
    """Per-GPU occupancy trees with >50% node-occupancy triggering."""

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self._driver: UvmDriver | None = None
        #: (gpu, region) -> heap-array of per-node resident page counts.
        self._trees: Dict[Tuple[int, int], List[int]] = {}
        #: (gpu, region) -> nodes that already fired (no re-prefetch).
        self._fired: Dict[Tuple[int, int], Set[int]] = {}
        self.prefetched_pages = 0

    def bind(self, driver: UvmDriver) -> None:
        """Attach to the UVM driver; called by the engine at setup."""
        self._driver = driver

    def on_install(self, gpu: int, vpn: int, now: int = 0) -> None:
        """Notify that ``vpn`` became resident on ``gpu`` via a fault.

        ``now`` is the installing GPU's clock; prefetch transfers it
        triggers reserve link occupancy from that instant.
        """
        self._account(gpu, vpn)
        self._maybe_fire(gpu, vpn, now)

    def _account(self, gpu: int, vpn: int) -> None:
        region, node = self._locate(vpn)
        tree = self._tree_for(gpu, region)
        while node >= 1:
            tree[node] += 1
            node //= 2

    @staticmethod
    def _locate(vpn: int) -> Tuple[int, int]:
        region = vpn // REGION_PAGES
        leaf = (vpn % REGION_PAGES) // LEAF_PAGES
        return region, FIRST_LEAF + leaf

    def _tree_for(self, gpu: int, region: int) -> List[int]:
        key = (gpu, region)
        tree = self._trees.get(key)
        if tree is None:
            tree = [0] * (2 * NUM_LEAVES)
            self._trees[key] = tree
        return tree

    def _maybe_fire(self, gpu: int, vpn: int, now: int) -> None:
        assert self._driver is not None, "prefetcher used before bind()"
        region, node = self._locate(vpn)
        tree = self._tree_for(gpu, region)
        fired = self._fired.setdefault((gpu, region), set())
        # Walk the ancestors (non-leaf nodes) from the leaf's parent up.
        node //= 2
        best: int | None = None
        while node >= 1:
            capacity = self._node_capacity(node)
            if node not in fired and tree[node] > capacity * self.threshold:
                best = node  # keep climbing: prefer the largest span
            node //= 2
        if best is None:
            return
        fired.add(best)
        self._prefetch_span(gpu, region, best, tree, now)

    @staticmethod
    def _node_capacity(node: int) -> int:
        """Pages covered by a heap node.

        A node at depth ``d`` (root is depth 0, ``2^d <= node < 2^(d+1)``)
        spans ``NUM_LEAVES >> d`` leaves of ``LEAF_PAGES`` pages each.
        """
        depth = node.bit_length() - 1
        return (NUM_LEAVES >> depth) * LEAF_PAGES

    def _prefetch_span(
        self, gpu: int, region: int, node: int, tree: List[int], now: int
    ) -> None:
        """Pull every still-host-resident page under ``node`` to ``gpu``."""
        assert self._driver is not None
        depth = node.bit_length() - 1
        span_leaves = NUM_LEAVES >> depth
        first_leaf = (node - (1 << depth)) * span_leaves
        base_vpn = region * REGION_PAGES + first_leaf * LEAF_PAGES
        for vpn in range(base_vpn, base_vpn + span_leaves * LEAF_PAGES):
            if self._driver.prefetch_page(gpu, vpn, now):
                self.prefetched_pages += 1
                leaf_node = FIRST_LEAF + (vpn % REGION_PAGES) // LEAF_PAGES
                climb = leaf_node
                while climb >= 1:
                    tree[climb] += 1
                    climb //= 2

"""Exception hierarchy for the GRIT reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent with its spec."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SanitizerError(SimulationError):
    """The machine-state sanitizer found a broken UVM invariant."""


class PolicyError(ReproError):
    """A placement policy was misused or produced an invalid decision."""


class UnknownWorkloadError(ReproError, KeyError):
    """Requested workload name is not registered."""


class UnknownPolicyError(ReproError, KeyError):
    """Requested policy name is not registered."""

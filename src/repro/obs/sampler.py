"""Per-interval metric sampling from live machine state.

The sampler is pull-style: nothing on the simulation fast path writes
a metric.  At each sample tick the engine hands it the current
simulated cycle and it copies totals out of the accumulators the
simulator already maintains (:class:`~repro.stats.counters.
EventCounters`, TLB hit counters, the central page table) into the
:class:`~repro.obs.metrics.MetricsRegistry` and snapshots a sample
row per metric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.constants import Scheme
from repro.obs import catalog
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.policies.base import PlacementPolicy
    from repro.uvm.machine import MachineState


class MetricsSampler:
    """Copies simulator accumulators into the registry per interval."""

    def __init__(
        self,
        registry: MetricsRegistry,
        machine: "MachineState",
        policy: "PlacementPolicy",
    ) -> None:
        self.registry = registry
        self.machine = machine
        self.policy = policy
        self._faults_at_last_sample = 0

    def sample(self, now: int) -> None:
        """Snapshot every catalog counter and gauge at cycle ``now``."""
        registry = self.registry
        machine = self.machine
        counters = machine.counters
        registry.set_total(catalog.SIM_ACCESSES, counters.accesses)
        registry.set_total(
            catalog.SIM_FASTPATH_RUNS, counters.fastpath_runs
        )
        registry.set_total(
            catalog.SIM_FASTPATH_ACCESSES, counters.fastpath_accesses
        )
        registry.set_total(
            catalog.UVM_LOCAL_FAULTS, counters.local_page_faults
        )
        registry.set_total(
            catalog.UVM_PROTECTION_FAULTS, counters.protection_faults
        )
        registry.set_total(catalog.UVM_MIGRATIONS, counters.migrations)
        registry.set_total(catalog.UVM_DUPLICATIONS, counters.duplications)
        registry.set_total(
            catalog.UVM_WRITE_COLLAPSES, counters.write_collapses
        )
        registry.set_total(catalog.UVM_EVICTIONS, counters.evictions)
        registry.set_total(
            catalog.UVM_REMOTE_ACCESSES, counters.remote_accesses
        )
        registry.set_total(catalog.UVM_PREFETCHES, counters.prefetches)
        registry.set_total(
            catalog.UVM_FAULT_BATCHES, counters.fault_batches
        )
        registry.set_total(
            catalog.UVM_COALESCED_FAULTS, counters.coalesced_faults
        )
        registry.set_total(
            catalog.GRIT_SCHEME_CHANGES, counters.scheme_changes
        )
        # Fault arrivals within the sample window stand in for the host
        # service queue's depth (the model services faults one at a
        # time, so arrivals-per-interval is the queue pressure signal).
        faults = counters.total_faults
        registry.set_gauge(
            catalog.UVM_FAULT_QUEUE_DEPTH,
            faults - self._faults_at_last_sample,
        )
        self._faults_at_last_sample = faults
        self._sample_tlb_rates()
        self._sample_scheme_population()
        self._sample_pa_cache()
        self._sample_contention()
        registry.sample(now)

    def _sample_tlb_rates(self) -> None:
        l1_hits = l1_misses = l2_hits = l2_misses = 0
        for gpu in self.machine.gpus:
            l1_hits += gpu.tlbs.l1.hits
            l1_misses += gpu.tlbs.l1.misses
            l2_hits += gpu.tlbs.l2.hits
            l2_misses += gpu.tlbs.l2.misses
        l1_total = l1_hits + l1_misses
        l2_total = l2_hits + l2_misses
        self.registry.set_gauge(
            catalog.TLB_L1_MISS_RATE,
            l1_misses / l1_total if l1_total else 0.0,
        )
        self.registry.set_gauge(
            catalog.TLB_L2_MISS_RATE,
            l2_misses / l2_total if l2_total else 0.0,
        )

    def _sample_scheme_population(self) -> None:
        populations = {scheme: 0 for scheme in Scheme}
        for page in self.machine.central_pt.pages():
            populations[page.scheme] += 1
        self.registry.set_gauge(
            catalog.GRIT_PAGES_ON_TOUCH, populations[Scheme.ON_TOUCH]
        )
        self.registry.set_gauge(
            catalog.GRIT_PAGES_ACCESS_COUNTER,
            populations[Scheme.ACCESS_COUNTER],
        )
        self.registry.set_gauge(
            catalog.GRIT_PAGES_DUPLICATION, populations[Scheme.DUPLICATION]
        )

    def _sample_contention(self) -> None:
        """Link and DRAM-channel pressure from the timing kernel.

        Traffic totals are live in every mode; the wait/occupancy
        series stay 0 unless the run uses ``contention="queued"``.
        """
        registry = self.registry
        topology = self.machine.topology
        kernel = self.machine.kernel
        registry.set_total(
            catalog.LINK_WAIT_CYCLES, topology.total_wait_cycles()
        )
        registry.set_total(
            catalog.LINK_BYTES,
            sum(link.bytes_transferred for link in topology.links()),
        )
        registry.set_total(
            catalog.LINK_MESSAGES, topology.total_messages()
        )
        # Switch-port pressure: identically zero on switchless fabrics
        # (all-to-all, ring, multi-node), live on nvswitch shapes.
        registry.set_total(
            catalog.SWITCH_WAIT_CYCLES, topology.switch_wait_cycles()
        )
        registry.set_total(
            catalog.SWITCH_MESSAGES, topology.switch_messages()
        )
        registry.set_gauge(
            catalog.SWITCH_PEAK_OCCUPANCY,
            topology.switch_peak_occupancy(),
        )
        registry.set_total(
            catalog.DRAM_WAIT_CYCLES, kernel.dram_wait_cycles()
        )
        registry.set_total(catalog.DRAM_ACCESSES, kernel.dram_accesses())
        registry.set_gauge(
            catalog.LINK_PEAK_OCCUPANCY, topology.peak_occupancy()
        )
        registry.set_gauge(
            catalog.DRAM_PEAK_OCCUPANCY, kernel.dram_peak_occupancy()
        )

    def _sample_pa_cache(self) -> None:
        """PA-Cache hit rate; stays 0 for policies without a PA path."""
        mechanism = getattr(self.policy, "mechanism", None)
        pa_cache = getattr(
            getattr(mechanism, "initiator", None), "pa_cache", None
        )
        if pa_cache is None:
            return
        lookups = pa_cache.hits + pa_cache.misses
        self.registry.set_gauge(
            catalog.PA_CACHE_HIT_RATE,
            pa_cache.hits / lookups if lookups else 0.0,
        )

"""Run inspection: page lifecycles rebuilt from the event log.

The structured :class:`~repro.stats.events.EventLog` records what the
machine actually did; this module turns that record into answers —
"what happened to page N?", "which pages churned the most?" — backing
the ``grit-repro inspect`` subcommand.  The reconstruction is pure:
inspection never re-runs the simulation, it only reads the log, so the
lifecycle it reports is exactly the sequence the machine recorded.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.constants import HOST_NODE, Scheme
from repro.stats.events import Event, EventKind, EventLog


def _node_name(node: int) -> str:
    return "host" if node == HOST_NODE else f"gpu{node}"


@dataclasses.dataclass(frozen=True)
class LifecycleStep:
    """One event in a page's life, with the scheme in force after it."""

    index: int
    event: Event
    #: Scheme-bit state after this event; None until the first
    #: SCHEME_CHANGE reveals it (pages start under the policy default).
    scheme: Optional[Scheme]

    def describe(self) -> str:
        """Human-readable one-liner for this step."""
        event = self.event
        kind = event.kind
        who = _node_name(event.gpu)
        if kind is EventKind.LOCAL_FAULT:
            access = "write" if event.detail else "read"
            text = f"{access} fault on {who}"
        elif kind is EventKind.PROTECTION_FAULT:
            text = f"write hit a read-only replica on {who}"
        elif kind is EventKind.MIGRATION:
            text = f"migrated {who} -> {_node_name(event.detail)}"
        elif kind is EventKind.DUPLICATION:
            text = f"duplicated to {who}"
        elif kind is EventKind.WRITE_COLLAPSE:
            text = (
                f"collapsed to writer {who} "
                f"(dropped {event.detail} replicas)"
            )
        elif kind is EventKind.EVICTION:
            text = f"evicted from {who}"
        elif kind is EventKind.SCHEME_CHANGE:
            scheme = Scheme(event.detail)
            text = f"scheme set to {scheme.short_name} (seen by {who})"
        elif kind is EventKind.GROUP_PROMOTION:
            text = f"group promoted ({event.detail} pages, via {who})"
        elif kind is EventKind.GROUP_DEGRADATION:
            text = f"group degraded ({event.detail} pages, via {who})"
        elif kind is EventKind.PREFETCH:
            text = f"prefetched to {who}"
        else:  # pragma: no cover - exhaustive over EventKind
            text = f"{kind.value} on {who}"
        if event.cycles:
            text += f"  [{event.cycles} cycles]"
        return text


def scheme_transitions(log: EventLog, vpn: int) -> List[Scheme]:
    """The page's scheme-bit sequence, in recorded order."""
    return [
        Scheme(event.detail)
        for event in log.filter(kind=EventKind.SCHEME_CHANGE, vpn=vpn)
    ]


def page_lifecycle(log: EventLog, vpn: int) -> List[LifecycleStep]:
    """Every recorded event for a page, annotated with scheme state."""
    steps: List[LifecycleStep] = []
    scheme: Optional[Scheme] = None
    for index, event in enumerate(log.page_history(vpn)):
        if event.kind is EventKind.SCHEME_CHANGE:
            scheme = Scheme(event.detail)
        steps.append(LifecycleStep(index=index, event=event, scheme=scheme))
    return steps


def render_lifecycle(log: EventLog, vpn: int) -> str:
    """The ``grit-repro inspect --vpn`` report for one page."""
    steps = page_lifecycle(log, vpn)
    if not steps:
        return f"page {vpn}: no recorded events"
    lines = [f"page {vpn}: {len(steps)} events"]
    for step in steps:
        marker = step.scheme.short_name if step.scheme else "-"
        lines.append(f"  #{step.index:<4d} [{marker:>4s}] {step.describe()}")
    transitions = scheme_transitions(log, vpn)
    if transitions:
        chain = " -> ".join(scheme.short_name for scheme in transitions)
        lines.append(f"  scheme transitions: {chain}")
    return "\n".join(lines)


def busiest_pages(
    log: EventLog, limit: int = 10
) -> List[Tuple[int, int]]:
    """``(vpn, event_count)`` for the most-eventful pages.

    Ties break toward the lower page number so the ranking is stable.
    """
    tallies: dict[int, int] = {}
    for event in log:
        tallies[event.vpn] = tallies.get(event.vpn, 0) + 1
    ranked = sorted(tallies.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit]

"""Perf-trajectory benchmarks and the regression gate (host side).

GRIT's claims are throughput claims, so the repo needs a machine-
readable performance history: this module runs a small suite of figure
benchmarks with wall-time and counter instrumentation, writes one
structured ``BENCH_<name>.json`` baseline per case, and compares fresh
measurements against committed baselines (``repro bench --compare``).

Two regression axes, handled differently because their noise differs:

* **simulated counters** (total cycles, faults, migrations, ...) are a
  pure function of (config, workload, policy, scale) — bit-identical
  across machines and reruns.  Any drift is a real behaviour change
  and fails the gate exactly, regardless of threshold.
* **wall time** is noisy, so the gate is min-of-N (the minimum of N
  repetitions estimates the noise floor) with a configurable relative
  threshold: a regression is flagged only when
  ``current_min > baseline_min * (1 + threshold)``.  Cross-machine
  comparisons should pass ``counters_only=True`` — wall baselines only
  mean something on the hardware that wrote them (the stored
  environment fingerprint says which that was).

Like :mod:`repro.obs.profile` this module reads the wall clock, so it
lives outside the simulation core and is not re-exported from
``repro.obs``; import it directly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import statistics
from typing import Dict, List, Sequence, Tuple

from repro.obs import catalog
from repro.obs.metrics import MetricsRegistry

#: Baseline file schema; bump on shape changes so stale committed
#: baselines fail loudly instead of comparing apples to oranges.
BENCH_SCHEMA_VERSION = 1

#: Baseline filename pattern (``BENCH_<case>.json``).
BASELINE_PREFIX = "BENCH_"

#: Environment variable controlling the default trace scale (shared
#: with the pytest-benchmark suite in ``benchmarks/``).
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"

#: Default trace scale when neither --scale nor the env var is set:
#: small enough for CI, large enough to exercise every mechanism.
DEFAULT_SCALE = 0.05

#: Repetitions per case; min-of-N needs N > 1 to reject noise, and the
#: baseline records all N so the spread is inspectable.
DEFAULT_REPEATS = 3

#: Relative wall-time slowdown tolerated before the gate fails.
DEFAULT_THRESHOLD = 0.25

#: Simulator counters recorded in baselines.  ``total_cycles`` is the
#: headline (simulated execution time); the rest attribute a cycle
#: change to the mechanism that caused it.
COUNTER_KEYS: Tuple[str, ...] = (
    "total_cycles",
    "accesses",
    "total_faults",
    "migrations",
    "duplications",
    "evictions",
    "remote_accesses",
)


class BenchError(ValueError):
    """A baseline cannot be loaded or compared."""


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One named (workload, policy) benchmark configuration."""

    name: str
    workload: str
    policy: str
    num_gpus: int = 2
    #: Timing-kernel mode the case runs under (see repro.sim.timing).
    contention: str = "none"
    #: Allocation granularity in bytes (larger pages fold more base
    #: pages together and lengthen steady-state runs).
    page_size: int = 4096
    #: Interconnect fabric shape the case runs on (see
    #: repro.interconnect.routing).
    topology: str = "all-to-all"
    #: Whether the vectorized steady-state fast path is enabled (see
    #: repro.sim.fastpath); counters are identical either way, only
    #: wall time differs.
    fast_path: bool = True


#: The default suite: the paper's baseline policy plus GRIT on three
#: workloads with distinct sharing behaviour (streaming FIR, stencil
#: ST, irregular BFS) — each CI-sized at scale 0.05.
DEFAULT_CASES: Tuple[BenchCase, ...] = (
    BenchCase("fir-on_touch", "fir", "on_touch"),
    BenchCase("fir-grit", "fir", "grit"),
    BenchCase("st-grit", "st", "grit"),
    BenchCase("bfs-grit", "bfs", "grit"),
    BenchCase(
        "fir-grit-contended", "fir", "grit",
        num_gpus=4, contention="queued",
    ),
    # Large pages lengthen steady-state runs, so this case is where
    # the vectorized fast path earns its keep; its counters are gated
    # like every other case (fast path is bit-identical by design).
    BenchCase(
        "fir-grit-fastpath", "fir", "grit",
        num_gpus=4, page_size=65536,
    ),
    # The scale-out shape: 8 GPUs behind switch groups, queued
    # contention so switch-port occupancy actually prices time.
    BenchCase(
        "fir-grit-8gpu-nvswitch", "fir", "grit",
        num_gpus=8, contention="queued", topology="nvswitch",
    ),
)


def default_scale() -> float:
    """Scale from :data:`SCALE_ENV_VAR`, else :data:`DEFAULT_SCALE`."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if not raw:
        return DEFAULT_SCALE
    try:
        return float(raw)
    except ValueError:
        raise BenchError(
            f"{SCALE_ENV_VAR}={raw!r} is not a number"
        ) from None


def env_fingerprint() -> Dict[str, object]:
    """Where a baseline was measured (wall times are machine-bound)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


@dataclasses.dataclass
class BenchResult:
    """Measurements of one case: N wall timings plus counters."""

    case: BenchCase
    scale: float
    #: Wall seconds per repetition, in execution order.
    wall_seconds: List[float]
    #: Phase name -> wall seconds per repetition.
    phase_seconds: Dict[str, List[float]]
    #: Deterministic simulator counters (identical across repeats).
    counters: Dict[str, int]

    @property
    def repeats(self) -> int:
        return len(self.wall_seconds)

    def to_baseline(self) -> dict:
        """The ``BENCH_<name>.json`` document for this measurement."""
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "name": self.case.name,
            "workload": self.case.workload,
            "policy": self.case.policy,
            "num_gpus": self.case.num_gpus,
            "contention": self.case.contention,
            "page_size": self.case.page_size,
            "topology": self.case.topology,
            "fast_path": self.case.fast_path,
            "scale": self.scale,
            "repeats": self.repeats,
            "timings": {
                "wall_seconds": {
                    "min": min(self.wall_seconds),
                    "median": statistics.median(self.wall_seconds),
                    "all": list(self.wall_seconds),
                },
                "phases": {
                    name: {
                        "min": min(samples),
                        "median": statistics.median(samples),
                    }
                    for name, samples in sorted(
                        self.phase_seconds.items()
                    )
                },
            },
            "counters": dict(self.counters),
            "env": env_fingerprint(),
        }


def run_case(
    case: BenchCase,
    scale: float,
    repeats: int = DEFAULT_REPEATS,
    registry: MetricsRegistry | None = None,
    inject_slowdown: float = 0.0,
) -> BenchResult:
    """Measure one case ``repeats`` times.

    ``inject_slowdown`` adds that many wall seconds to every repetition
    — a CI drill (like the sweep's ``--inject-crash``) proving the
    gate actually fires; it never touches simulated behaviour.
    """
    from repro.obs.profile import profile_run

    if repeats < 1:
        raise BenchError("repeats must be >= 1")
    wall: List[float] = []
    phases: Dict[str, List[float]] = {}
    counters: Dict[str, int] = {}
    for _ in range(repeats):
        profiled = profile_run(
            case.workload,
            case.policy,
            num_gpus=case.num_gpus,
            scale=scale,
            page_size=case.page_size,
            contention=case.contention,
            topology=case.topology,
            fast_path=case.fast_path,
        )
        if registry is not None:
            registry.inc(catalog.BENCH_RUNS)
        wall.append(
            profiled.profiler.total_seconds() + inject_slowdown
        )
        for name, seconds in profiled.profiler.phases:
            phases.setdefault(name, []).append(seconds)
        result = profiled.result
        measured = dict(result.counters.as_dict())
        measured["total_cycles"] = result.total_cycles
        fresh = {key: int(measured[key]) for key in COUNTER_KEYS}
        if counters and fresh != counters:
            raise BenchError(
                f"{case.name}: counters drifted between repetitions "
                f"of one run — the simulator is nondeterministic"
            )
        counters = fresh
    return BenchResult(
        case=case,
        scale=scale,
        wall_seconds=wall,
        phase_seconds=phases,
        counters=counters,
    )


def run_suite(
    cases: Sequence[BenchCase],
    scale: float,
    repeats: int = DEFAULT_REPEATS,
    registry: MetricsRegistry | None = None,
    inject_slowdown: float = 0.0,
) -> List[BenchResult]:
    """Measure every case in order."""
    return [
        run_case(
            case,
            scale,
            repeats=repeats,
            registry=registry,
            inject_slowdown=inject_slowdown,
        )
        for case in cases
    ]


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------


def baseline_path(directory: str, name: str) -> str:
    """``<directory>/BENCH_<name>.json``."""
    return os.path.join(directory, f"{BASELINE_PREFIX}{name}.json")


def write_baseline(directory: str, result: BenchResult) -> str:
    """Write one case's baseline; returns the path written."""
    os.makedirs(directory, exist_ok=True)
    path = baseline_path(directory, result.case.name)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(result.to_baseline(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_baseline(path: str) -> dict:
    """Load and schema-check one ``BENCH_*.json`` document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot load baseline {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BenchError(f"baseline {path} is not a JSON object")
    version = data.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise BenchError(
            f"baseline {path} has schema {version!r}, current is "
            f"{BENCH_SCHEMA_VERSION}; regenerate with 'repro bench'"
        )
    return data


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Regression:
    """One gate finding."""

    case: str
    #: ``counter`` (simulated behaviour changed) or ``wall``
    #: (measured slowdown past the threshold).
    kind: str
    message: str


def compare_case(
    current: BenchResult,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    counters_only: bool = False,
) -> List[Regression]:
    """Gate one case's fresh measurement against its baseline.

    Counter drift always fails (deterministic identity); wall time
    fails only past ``threshold`` on the min-of-N estimate, and not at
    all with ``counters_only`` (the right mode when the baseline was
    written on different hardware).
    """
    name = current.case.name
    findings: List[Regression] = []
    for field in ("workload", "policy", "num_gpus", "contention",
                  "page_size", "topology", "fast_path", "scale"):
        # Older baselines predate some fields; each absent field
        # defaults to the value every baseline was measured with at
        # the time (flat contention, 4 KiB pages, all-to-all fabric,
        # fast path on).
        defaults = {
            "contention": "none", "page_size": 4096,
            "topology": "all-to-all", "fast_path": True,
        }
        recorded = baseline.get(field, defaults.get(field))
        measured = getattr(
            current.case, field, None
        ) if field != "scale" else current.scale
        if recorded != measured:
            raise BenchError(
                f"{name}: baseline was measured with {field}="
                f"{recorded!r}, this run uses {measured!r}; "
                f"regenerate the baseline or match the flags"
            )
    base_counters = baseline.get("counters", {})
    for key in COUNTER_KEYS:
        if key not in base_counters:
            continue
        expected = int(base_counters[key])
        measured = int(current.counters[key])
        if measured != expected:
            findings.append(
                Regression(
                    case=name,
                    kind="counter",
                    message=(
                        f"{key} changed: baseline {expected:,} -> "
                        f"measured {measured:,} (simulated behaviour "
                        f"is deterministic; this is a real change)"
                    ),
                )
            )
    if not counters_only:
        base_min = float(
            baseline["timings"]["wall_seconds"]["min"]
        )
        cur_min = min(current.wall_seconds)
        limit = base_min * (1.0 + threshold)
        if cur_min > limit:
            findings.append(
                Regression(
                    case=name,
                    kind="wall",
                    message=(
                        f"wall time regressed: min-of-"
                        f"{current.repeats} {cur_min:.3f}s > "
                        f"baseline {base_min:.3f}s "
                        f"* (1 + {threshold:g})"
                    ),
                )
            )
    return findings


def compare_suite(
    results: Sequence[BenchResult],
    baseline_dir: str,
    threshold: float = DEFAULT_THRESHOLD,
    counters_only: bool = False,
    registry: MetricsRegistry | None = None,
) -> Tuple[List[Regression], List[str]]:
    """Gate a suite; returns ``(regressions, notes)``.

    Notes are non-fatal: a missing baseline (new case) or an
    environment-fingerprint mismatch (wall numbers from different
    hardware) is reported but does not fail the gate by itself.
    """
    regressions: List[Regression] = []
    notes: List[str] = []
    env = env_fingerprint()
    for result in results:
        path = baseline_path(baseline_dir, result.case.name)
        if not os.path.exists(path):
            notes.append(
                f"{result.case.name}: no baseline at {path} "
                f"(new case? write one with 'repro bench')"
            )
            continue
        baseline = load_baseline(path)
        if registry is not None:
            registry.inc(catalog.BENCH_COMPARISONS)
        if not counters_only and baseline.get("env") != env:
            notes.append(
                f"{result.case.name}: baseline env differs from this "
                f"machine; wall-time comparison is unreliable "
                f"(consider --counters-only)"
            )
        found = compare_case(
            result,
            baseline,
            threshold=threshold,
            counters_only=counters_only,
        )
        if registry is not None and found:
            registry.inc(catalog.BENCH_REGRESSIONS, len(found))
        regressions.extend(found)
    return regressions, notes


def select_cases(names: Sequence[str] | None) -> List[BenchCase]:
    """Resolve ``--cases`` names against the default suite."""
    if not names:
        return list(DEFAULT_CASES)
    by_name = {case.name: case for case in DEFAULT_CASES}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise BenchError(
            f"unknown bench case(s): {', '.join(missing)}; "
            f"known: {', '.join(sorted(by_name))}"
        )
    return [by_name[name] for name in names]

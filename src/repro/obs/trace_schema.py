"""Chrome trace-event schema validation.

Perfetto and ``chrome://tracing`` are forgiving loaders; this validator
is not.  It checks the subset of the trace-event format the tracer
emits — ``X`` complete events, ``i`` instants, ``C`` counters, and
``M`` metadata — strictly enough that a malformed export fails tests
and CI instead of rendering as a silently empty timeline.

Usable as a module too::

    python -m repro.obs.trace_schema out.json
"""

from __future__ import annotations

import json
from typing import List

#: Event phases the exporter may produce.
_KNOWN_PHASES = frozenset({"X", "i", "C", "M"})

_NUMERIC = (int, float)


def _check_event(index: int, event: object, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    phase = event.get("ph")
    if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
        errors.append(f"{where}: unknown or missing phase {phase!r}")
        return
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing event name")
    if not isinstance(event.get("pid"), int):
        errors.append(f"{where}: missing integer pid")
    if "args" in event and not isinstance(event["args"], dict):
        errors.append(f"{where}: args is not an object")
    if phase == "M":
        return
    ts = event.get("ts")
    if not isinstance(ts, _NUMERIC) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: missing non-negative ts")
    if phase == "X":
        duration = event.get("dur")
        if (
            not isinstance(duration, _NUMERIC)
            or isinstance(duration, bool)
            or duration < 0
        ):
            errors.append(f"{where}: complete event needs dur >= 0")
        if not isinstance(event.get("tid"), int):
            errors.append(f"{where}: complete event needs an integer tid")
    elif phase == "i":
        if event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event needs scope s in t/p/g")
    elif phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"{where}: counter event needs value args")
        elif not all(
            isinstance(value, _NUMERIC) and not isinstance(value, bool)
            for value in args.values()
        ):
            errors.append(f"{where}: counter args must be numeric")


def validate_chrome_trace(document: object) -> List[str]:
    """Validate a parsed trace document; returns a list of problems.

    An empty list means the document is a structurally valid Chrome
    trace-event JSON object.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document has no traceEvents array"]
    for index, event in enumerate(events):
        _check_event(index, event, errors)
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Load and validate a trace JSON file from disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: cannot load trace JSON: {exc}"]
    return validate_chrome_trace(document)


def main(argv: List[str] | None = None) -> int:
    """``python -m repro.obs.trace_schema <trace.json> [...]``"""
    import sys

    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.trace_schema TRACE.json [...]")
        return 2
    status = 0
    for path in paths:
        errors = validate_trace_file(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}")
        else:
            print(f"{path}: valid Chrome trace-event JSON")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

"""Span tracing over simulated cycles (pillar 1 of repro.obs).

The tracer records *spans* — named intervals with a start cycle and a
duration — on per-GPU tracks, plus a ``host`` track for host-initiated
work and an ``engine`` track for whole-run phases.  Timestamps are
simulated cycles, never wall time, so a trace is a pure function of
(config, trace, policy) and byte-identical across runs.

Driver operations become top-level spans (the UVM driver wraps its
entry points when a tracer is installed, mirroring the sanitizer
hooks); machine events appended to the :class:`~repro.stats.events.
EventLog` during an operation become child spans laid out sequentially
inside it, so a fault span shows the migration / duplication /
eviction work it paid for.  Zero-duration spans are exported as
instant events.

:func:`to_chrome_trace` renders everything as a Chrome trace-event
JSON document that opens directly in Perfetto or ``chrome://tracing``
(one simulated cycle is displayed as one microsecond).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Sequence, Tuple

from repro.stats.events import Event, EventKind

#: Track name for engine-level phases (the whole-run span, interval
#: ticks); GPU tracks are ``gpu<N>`` and host-side work is ``host``.
ENGINE_TRACK = "engine"

#: Event kinds rendered as child spans of the enclosing driver
#: operation.  Fault kinds are excluded: the operation span itself
#: already covers the fault end to end.
_CHILD_KINDS = frozenset(
    {
        EventKind.MIGRATION,
        EventKind.DUPLICATION,
        EventKind.WRITE_COLLAPSE,
        EventKind.EVICTION,
        EventKind.PREFETCH,
        EventKind.SCHEME_CHANGE,
        EventKind.GROUP_PROMOTION,
        EventKind.GROUP_DEGRADATION,
    }
)


def track_for_gpu(gpu: int) -> str:
    """Track name for a node id (negative ids are the host)."""
    return "host" if gpu < 0 else f"gpu{gpu}"


@dataclasses.dataclass(frozen=True)
class Span:
    """One traced interval, in simulated cycles."""

    name: str
    track: str
    start: int
    duration: int
    #: Sorted ``(key, value)`` pairs — kept as a tuple so spans stay
    #: hashable and comparison in tests is exact.
    args: Tuple[Tuple[str, int], ...] = ()


class _OpenOp:
    """A driver operation whose duration is not yet known."""

    __slots__ = ("name", "track", "start", "cursor", "children")

    def __init__(self, name: str, track: str, start: int) -> None:
        self.name = name
        self.track = track
        self.start = start
        #: Layout position for the next child span.
        self.cursor = start
        self.children: List[Span] = []


class SpanTracer:
    """Bounded span recorder with per-track sequential layout."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._stack: List[_OpenOp] = []
        #: Per-track end of the last recorded span; keeps spans on one
        #: track from overlapping when several operations share a start
        #: cycle (the stall cycles serialize, so should their spans).
        self._cursor: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.spans)

    def _append(self, span: Span) -> None:
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(span)

    @staticmethod
    def _pack_args(args: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(args.items()))

    # ------------------------------------------------------------------
    # driver-operation spans
    # ------------------------------------------------------------------

    def op_begin(self, name: str, gpu: int, start: int) -> None:
        """Open an operation span on ``gpu``'s track at cycle ``start``."""
        track = track_for_gpu(gpu)
        start = max(start, self._cursor.get(track, 0))
        self._stack.append(_OpenOp(name, track, start))

    def op_end(self, duration: int, **args: int) -> None:
        """Close the innermost open operation with its final duration.

        Operations that cost nothing and produced no machine events are
        not recorded — a trace of millions of zero-cycle remote-access
        checks would drown the signal (and the capacity).
        """
        if not self._stack:
            raise RuntimeError("op_end without a matching op_begin")
        op = self._stack.pop()
        self._cursor[op.track] = max(
            self._cursor.get(op.track, 0), op.start + duration
        )
        if duration <= 0 and not op.children:
            return
        self._append(
            Span(op.name, op.track, op.start, duration,
                 self._pack_args(args))
        )
        for child in op.children:
            self._append(child)

    def on_event(self, event: Event) -> None:
        """EventLog listener: render machine events as (child) spans."""
        if event.kind not in _CHILD_KINDS:
            return
        args = self._pack_args({"vpn": event.vpn, "detail": event.detail})
        if self._stack:
            op = self._stack[-1]
            span = Span(
                event.kind.value, op.track, op.cursor, event.cycles, args
            )
            op.cursor += event.cycles
            op.children.append(span)
            return
        # Background event outside any operation (direct mechanic use,
        # unit tests): place it at the owning track's layout cursor.
        track = track_for_gpu(event.gpu)
        start = self._cursor.get(track, 0)
        self._append(Span(event.kind.value, track, start, event.cycles, args))
        self._cursor[track] = start + event.cycles

    # ------------------------------------------------------------------
    # direct recording
    # ------------------------------------------------------------------

    def record(
        self, name: str, track: str, start: int, duration: int, **args: int
    ) -> None:
        """Record a complete span on an explicitly named track."""
        if duration < 0:
            raise ValueError("span duration must be non-negative")
        self._append(Span(name, track, start, duration,
                          self._pack_args(args)))

    def instant(self, name: str, track: str, ts: int, **args: int) -> None:
        """Record a zero-duration (instant) event."""
        self._append(Span(name, track, ts, 0, self._pack_args(args)))

    def span_counts(self) -> Dict[str, int]:
        """Tally of recorded spans by name (for summaries and tests)."""
        tallies: Dict[str, int] = {}
        for span in self.spans:
            tallies[span.name] = tallies.get(span.name, 0) + 1
        return tallies


def _track_sort_key(track: str) -> Tuple[int, int, str]:
    """GPU tracks first (numerically), then host, engine, the rest."""
    if track.startswith("gpu") and track[3:].isdigit():
        return (0, int(track[3:]), track)
    if track == "host":
        return (1, 0, track)
    if track == ENGINE_TRACK:
        return (2, 0, track)
    return (3, 0, track)


def trace_events(
    spans: Sequence[Span],
    counter_samples: Sequence[Tuple[int, str, float]] = (),
    pid: int = 0,
    process_name: str = "GRIT simulator (cycles as us)",
) -> List[dict]:
    """Render spans (and metric samples) as trace events for one pid.

    ``M`` metadata events name the process and its per-track threads,
    ``X``/``i`` events carry the spans, and ``C`` events carry the
    counter samples.  The sweep aggregator calls this once per worker
    task with a distinct ``pid``, so every task renders as its own
    process row while keeping per-GPU ``tid`` tracks.
    """
    tracks = sorted(
        {span.track for span in spans}, key=_track_sort_key
    )
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for span in spans:
        record: dict = {
            "name": span.name,
            "cat": "sim",
            "ts": span.start,
            "pid": pid,
            "tid": tids[span.track],
            "args": dict(span.args),
        }
        if span.duration > 0:
            record["ph"] = "X"
            record["dur"] = span.duration
        else:
            record["ph"] = "i"
            record["s"] = "t"
        events.append(record)
    for ts, name, value in counter_samples:
        events.append(
            {
                "ph": "C",
                "name": name,
                "cat": "metrics",
                "ts": ts,
                "pid": pid,
                "args": {"value": value},
            }
        )
    return events


def to_chrome_trace(
    tracer: SpanTracer,
    counter_samples: Sequence[Tuple[int, str, float]] = (),
    metadata: Dict[str, object] | None = None,
) -> dict:
    """Render spans (and optional metric samples) as a Chrome trace.

    The result is a JSON-ready dict following the trace-event format:
    ``X`` (complete) events for spans, ``i`` (instant) events for
    zero-duration spans, ``C`` (counter) events for metric samples, and
    ``M`` metadata events naming the process and per-track threads.
    One simulated cycle is rendered as one trace microsecond.
    """
    other: Dict[str, object] = {"dropped_spans": tracer.dropped}
    if metadata:
        other.update(metadata)
    return {
        "displayTimeUnit": "ns",
        "otherData": other,
        "traceEvents": trace_events(tracer.spans, counter_samples),
    }


def write_chrome_trace(path: str, document: dict) -> None:
    """Serialize a trace document with a stable byte layout."""
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")

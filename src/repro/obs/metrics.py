"""Typed metrics registry (pillar 2 of repro.obs).

Three instrument kinds, mirroring the Prometheus data model:

* **counter** — a monotonically non-decreasing total.  The simulator
  already accumulates its counts in :class:`~repro.stats.counters.
  EventCounters`; the registry's counters are *pull-style* — the
  sampler copies the current totals in at each sample tick, so the
  simulation fast path never touches the registry.
* **gauge** — a point-in-time value (a hit rate, a population).
* **histogram** — a bucketed distribution (fault-service cycles).

:meth:`MetricsRegistry.sample` snapshots every counter and gauge into
a time series; the series exports as JSON-lines, CSV, or Prometheus
text exposition format.  Every metric must be registered (with a
description — the lint rule GRIT-C005 checks the catalog is emitted
and documented) before it is written to; writes to unknown names
raise, so a typo cannot silently create an undocumented series.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
import re
from typing import Dict, List, Tuple


class MetricKind(enum.Enum):
    """Instrument kinds supported by the registry."""

    COUNTER = "counter"
    GAUGE = "gauge"
    HISTOGRAM = "histogram"


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Identity and documentation of one metric."""

    name: str
    kind: MetricKind
    description: str
    unit: str = ""


#: Default histogram bucket upper bounds, in cycles: covers one L1 TLB
#: hit through a multi-page write-collapse storm (+Inf is implicit).
DEFAULT_BUCKETS: Tuple[int, ...] = (
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
)


class HistogramData:
    """Cumulative bucket counts plus sum/count, Prometheus-style."""

    def __init__(self, bounds: Tuple[int, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with +Inf."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            pairs.append((float(bound), running))
        pairs.append((math.inf, self.count))
        return pairs

    def mean(self) -> float:
        """Average observed value (0 with no observations)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Registered metrics, their live values, and the sampled series."""

    def __init__(self) -> None:
        self._specs: Dict[str, MetricSpec] = {}
        self._values: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramData] = {}
        #: ``(ts, name, value)`` rows appended by :meth:`sample`.
        self.samples: List[Tuple[int, str, float]] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self, spec: MetricSpec, buckets: Tuple[int, ...] | None = None
    ) -> None:
        """Add one metric; duplicate names are rejected."""
        if spec.name in self._specs:
            raise ValueError(f"metric {spec.name!r} already registered")
        self._specs[spec.name] = spec
        if spec.kind is MetricKind.HISTOGRAM:
            self._histograms[spec.name] = HistogramData(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        else:
            self._values[spec.name] = 0.0

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._specs)

    def spec(self, name: str) -> MetricSpec:
        """The registered spec for ``name`` (raises on unknown names)."""
        self._require(name)
        return self._specs[name]

    def _require(self, name: str, kind: MetricKind | None = None) -> None:
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not registered; add it to the "
                f"catalog (repro.obs.catalog) first"
            )
        if kind is not None and spec.kind is not kind:
            raise ValueError(
                f"metric {name!r} is a {spec.kind.value}, not a "
                f"{kind.value}"
            )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def inc(self, name: str, delta: float = 1.0) -> None:
        """Increment a counter."""
        self._require(name, MetricKind.COUNTER)
        if delta < 0:
            raise ValueError("counters only go up")
        self._values[name] += delta

    def set_total(self, name: str, value: float) -> None:
        """Pull-style counter update: overwrite the cumulative total."""
        self._require(name, MetricKind.COUNTER)
        if value < self._values[name]:
            raise ValueError(
                f"counter {name!r} cannot decrease "
                f"({self._values[name]} -> {value})"
            )
        self._values[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to its current value."""
        self._require(name, MetricKind.GAUGE)
        self._values[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation."""
        self._require(name, MetricKind.HISTOGRAM)
        self._histograms[name].observe(value)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def value(self, name: str) -> float:
        """Current value of a counter or gauge."""
        self._require(name)
        if name in self._histograms:
            raise ValueError(f"{name!r} is a histogram; use histogram()")
        return self._values[name]

    def histogram(self, name: str) -> HistogramData:
        """The bucket data of a histogram metric."""
        self._require(name, MetricKind.HISTOGRAM)
        return self._histograms[name]

    def sample(self, ts: int) -> None:
        """Snapshot every counter and gauge into the time series."""
        for name in sorted(self._values):
            self.samples.append((ts, name, self._values[name]))

    def series(self, name: str) -> List[Tuple[int, float]]:
        """The sampled ``(ts, value)`` series of one metric."""
        self._require(name)
        return [(ts, value) for ts, n, value in self.samples if n == name]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Sampled series plus histogram summaries, one JSON per line."""
        lines = [
            json.dumps(
                {"ts": ts, "metric": name, "value": value}, sort_keys=True
            )
            for ts, name, value in self.samples
        ]
        for name in sorted(self._histograms):
            data = self._histograms[name]
            lines.append(
                json.dumps(
                    {
                        "metric": name,
                        "kind": "histogram",
                        "count": data.count,
                        "sum": data.total,
                        "buckets": {
                            _le_label(bound): count
                            for bound, count in data.cumulative_counts()
                        },
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_csv(self) -> str:
        """Sampled series as ``ts,metric,value`` rows."""
        lines = ["ts,metric,value"]
        for ts, name, value in self.samples:
            lines.append(f"{ts},{name},{_format_number(value)}")
        return "\n".join(lines) + "\n"

    def to_prometheus(self) -> str:
        """Final values in Prometheus text exposition format."""
        lines: List[str] = []
        for name in self.names():
            spec = self._specs[name]
            flat = prometheus_name(name)
            lines.append(f"# HELP {flat} {spec.description}")
            lines.append(f"# TYPE {flat} {spec.kind.value}")
            if spec.kind is MetricKind.HISTOGRAM:
                data = self._histograms[name]
                for bound, count in data.cumulative_counts():
                    lines.append(
                        f'{flat}_bucket{{le="{_le_label(bound)}"}} {count}'
                    )
                lines.append(f"{flat}_sum {_format_number(data.total)}")
                lines.append(f"{flat}_count {data.count}")
            else:
                lines.append(f"{flat} {_format_number(self._values[name])}")
        return "\n".join(lines) + ("\n" if lines else "")


def prometheus_name(name: str) -> str:
    """Flatten a dotted metric name into a Prometheus-legal one."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _le_label(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return _format_number(bound)


def _format_number(value: float) -> str:
    """Integers without a trailing .0; floats with repr precision."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))

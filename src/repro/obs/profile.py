"""Wall-time phase profiling for the simulator itself (host side).

This module answers "where does the *simulator* spend real time?" —
trace generation vs. engine construction vs. the replay loop — for
people optimizing the reproduction, not the modelled machine.  It is
the one observability module allowed to read the wall clock, which is
why it lives outside :mod:`repro.sim` / :mod:`repro.uvm` (the simlint
determinism rules keep wall time out of the simulation core) and why
:mod:`repro.obs`'s ``__init__`` does not re-export it: import it
directly::

    from repro.obs.profile import profile_run
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Iterator, List, Tuple

from repro.sim.result import SimulationResult


class PhaseProfiler:
    """Accumulates named wall-time phases."""

    def __init__(self) -> None:
        #: ``(name, seconds)`` in completion order.
        self.phases: List[Tuple[str, float]] = []

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block as one named phase."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases.append((name, time.perf_counter() - start))

    def total_seconds(self) -> float:
        """Wall time across all recorded phases."""
        return sum(seconds for _, seconds in self.phases)

    def render(self) -> str:
        """Text table of phases with share-of-total percentages."""
        total = self.total_seconds()
        width = max((len(name) for name, _ in self.phases), default=5)
        lines = []
        for name, seconds in self.phases:
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"{name:<{width}s}  {seconds:9.3f}s  {share:5.1f}%")
        lines.append(f"{'total':<{width}s}  {total:9.3f}s  100.0%")
        return "\n".join(lines)

    def to_registry(self):
        """The phases as a :class:`MetricsRegistry` of gauges.

        One ``profile.phase.<name>`` gauge per phase (repeated phase
        names sum their seconds) plus a ``profile.total`` gauge, all
        sampled once at ts 0 — which makes every registry exporter
        (JSONL, CSV, Prometheus) a profile exporter for free.
        """
        from repro.obs.metrics import (
            MetricKind,
            MetricSpec,
            MetricsRegistry,
        )

        registry = MetricsRegistry()
        merged: dict[str, float] = {}
        for name, seconds in self.phases:
            merged[name] = merged.get(name, 0.0) + seconds
        for name, seconds in merged.items():
            metric = f"profile.phase.{name}"
            registry.register(
                MetricSpec(
                    name=metric,
                    kind=MetricKind.GAUGE,
                    description=f"wall seconds in the {name} phase",
                    unit="seconds",
                )
            )
            registry.set_gauge(metric, seconds)
        registry.register(
            MetricSpec(
                name="profile.total",
                kind=MetricKind.GAUGE,
                description="wall seconds across all phases",
                unit="seconds",
            )
        )
        registry.set_gauge("profile.total", self.total_seconds())
        registry.sample(0)
        return registry

    def to_jsonl(self) -> str:
        """Phase timings as metrics JSON-lines (``profile --json``)."""
        return self.to_registry().to_jsonl()


@dataclasses.dataclass(frozen=True)
class ProfiledRun:
    """A profiled simulation: the result plus its wall-time phases."""

    result: SimulationResult
    profiler: PhaseProfiler


def profile_run(
    workload: str,
    policy: str,
    num_gpus: int = 4,
    scale: float = 0.3,
    page_size: int = 4096,
    contention: str = "none",
    topology: str = "all-to-all",
    fast_path: bool = True,
) -> ProfiledRun:
    """Run one (workload, policy) pair with wall-time phase timing.

    Phases: ``generate-trace`` (workload synthesis), ``build-engine``
    (machine + driver construction), ``replay`` (the simulation loop),
    and ``summarize`` (result aggregation formatting).
    """
    # Imported here, not at module top: profile pulls in the engine and
    # the workload generators, and repro.obs must stay importable from
    # repro.sim without a cycle.
    from repro.config import SystemConfig
    from repro.policies import make_policy
    from repro.sim.engine import Engine
    from repro.workloads import make_workload

    profiler = PhaseProfiler()
    config = SystemConfig(
        num_gpus=num_gpus,
        page_size=page_size,
        contention=contention,
        topology=topology,
        fast_path=fast_path,
    )
    with profiler.phase("generate-trace"):
        trace = make_workload(workload, num_gpus=num_gpus, scale=scale)
    with profiler.phase("build-engine"):
        engine = Engine(config, trace, make_policy(policy))
    with profiler.phase("replay"):
        result = engine.run()
    with profiler.phase("summarize"):
        result.summary()
    return ProfiledRun(result=result, profiler=profiler)

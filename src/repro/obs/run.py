"""Run-scoped observability bundle and the enable switch.

One :class:`RunObservation` per simulation ties the three pillars
together: it owns the span tracer and the metrics registry, installs
itself as the event-log listener (machine events become child spans
and histogram observations), and is sampled by the engine on a fixed
simulated-cycle interval.

Observability follows the sanitizer's enablement pattern: off by
default with zero fast-path cost, switched on per run with
``SystemConfig(observe=True)`` or globally with ``GRIT_TRACE=1``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict

from repro.obs import catalog
from repro.obs.catalog import build_registry
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import (
    ENGINE_TRACK,
    SpanTracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.stats.events import Event, EventKind, EventLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SystemConfig
    from repro.policies.base import PlacementPolicy
    from repro.uvm.machine import MachineState

#: Environment variable that force-enables observability everywhere.
OBSERVE_ENV_VAR = "GRIT_TRACE"

#: Simulated cycles between metric samples (a run in the hundreds of
#: millions of cycles yields a few thousand sample rows per metric).
DEFAULT_SAMPLE_INTERVAL = 100_000

#: Metrics-export formats understood by :meth:`RunObservation.
#: write_metrics` (format name -> file suffix shown in help text).
METRICS_FORMATS = ("jsonl", "csv", "prom")


def observe_enabled(config: "SystemConfig") -> bool:
    """True when the config flag or the environment enables observing."""
    if config.observe:
        return True
    return os.environ.get(OBSERVE_ENV_VAR, "") == "1"


class RunObservation:
    """Tracer + metrics + event log for one simulation run."""

    def __init__(
        self, sample_interval: int = DEFAULT_SAMPLE_INTERVAL
    ) -> None:
        if sample_interval < 1:
            raise ValueError("sample interval must be positive")
        self.sample_interval = sample_interval
        self.tracer = SpanTracer()
        self.registry = build_registry()
        self.event_log: EventLog | None = None
        self.sampler: MetricsSampler | None = None
        self._finalized = False

    def bind(
        self, machine: "MachineState", policy: "PlacementPolicy"
    ) -> None:
        """Attach to a machine before its UVM driver is constructed.

        Installs the tracer on the machine (the driver wraps its entry
        points when it sees one), guarantees an event log exists, and
        registers this observation as the log's listener.
        """
        if machine.event_log is None:
            machine.event_log = EventLog()
        self.event_log = machine.event_log
        self.event_log.listener = self.on_event
        machine.tracer = self.tracer
        self.sampler = MetricsSampler(self.registry, machine, policy)

    def on_event(self, event: Event) -> None:
        """Event-log listener: spans plus per-operation histograms."""
        self.tracer.on_event(event)
        if event.kind is EventKind.LOCAL_FAULT:
            self.registry.observe(
                catalog.UVM_FAULT_SERVICE_CYCLES, event.cycles
            )
        elif event.kind is EventKind.MIGRATION:
            self.registry.observe(
                catalog.UVM_MIGRATION_CYCLES, event.cycles
            )

    def sample(self, now: int) -> None:
        """Record one metric sample at simulated cycle ``now``."""
        if self.sampler is not None:
            self.sampler.sample(now)

    def finalize(self, total_cycles: int) -> None:
        """Close out the run: final sample plus the whole-run span."""
        if self._finalized:
            return
        self._finalized = True
        self.sample(total_cycles)
        self.tracer.record("run", ENGINE_TRACK, 0, total_cycles)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def chrome_trace(
        self, metadata: Dict[str, object] | None = None
    ) -> dict:
        """The Chrome trace-event document (spans + counter samples)."""
        extra: Dict[str, object] = {}
        if self.event_log is not None:
            extra["dropped_events"] = self.event_log.dropped
        if metadata:
            extra.update(metadata)
        return to_chrome_trace(
            self.tracer, self.registry.samples, metadata=extra
        )

    def write_trace(
        self, path: str, metadata: Dict[str, object] | None = None
    ) -> None:
        """Write the trace JSON with a byte-stable layout."""
        write_chrome_trace(path, self.chrome_trace(metadata))

    def render_metrics(self, fmt: str = "jsonl") -> str:
        """The metrics series in one of :data:`METRICS_FORMATS`."""
        if fmt == "jsonl":
            return self.registry.to_jsonl()
        if fmt == "csv":
            return self.registry.to_csv()
        if fmt == "prom":
            return self.registry.to_prometheus()
        raise ValueError(
            f"unknown metrics format {fmt!r}; "
            f"expected one of {', '.join(METRICS_FORMATS)}"
        )

    def write_metrics(self, path: str, fmt: str = "jsonl") -> None:
        """Write the metrics series to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_metrics(fmt))

"""Cross-process telemetry aggregation for orchestrated sweeps.

The sweep orchestrator (:mod:`repro.harness.orchestrator`) runs every
task in its own worker process, which used to be where observability
died: spans and metrics recorded inside a worker were garbage-collected
with it.  This module is the bridge across the process boundary:

* :class:`TaskTelemetry` captures one task's per-run observability —
  its :class:`~repro.obs.tracer.SpanTracer` spans, final
  :class:`~repro.obs.metrics.MetricsRegistry` counter/gauge values,
  histogram buckets, sampled series, and event-log drop counts — as a
  picklable, JSON-serializable value;
* small payloads travel inline over the existing result pipe; payloads
  past :data:`MAX_INLINE_SPANS` spill to a JSON artifact file and only
  the path crosses the pipe (:meth:`TaskTelemetry.to_payload` /
  :func:`telemetry_from_payload`);
* :func:`merge_chrome_trace` renders every task as its own process row
  of one sweep-wide Chrome trace (one ``pid`` per task, per-GPU
  ``tid`` tracks preserved) that satisfies
  :func:`repro.obs.trace_schema.validate_chrome_trace`;
* :func:`merge_registry` folds the per-task registries into one
  catalog registry: counters sum across tasks, histograms merge bucket
  by bucket, and one sample per task records the sweep trajectory.

Telemetry is carried only by the *successful* attempt of a task: a
failed or crashed attempt ships nothing, so a retried task contributes
exactly one clean run's counters — never a partial double-count.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.obs.catalog import build_registry
from repro.obs.metrics import MetricKind, MetricsRegistry
from repro.obs.tracer import Span, trace_events

#: Serialized telemetry schema; bump on shape changes so a stale spill
#: file fails loudly instead of rehydrating with missing fields.
TELEMETRY_SCHEMA_VERSION = 1

#: Spans above which a payload spills to an artifact file instead of
#: travelling inline over the result pipe (pipes buffer in-memory; a
#: million-span trace does not belong there).
MAX_INLINE_SPANS = 20_000


class TelemetryError(ValueError):
    """A telemetry payload could not be decoded."""


@dataclasses.dataclass
class TaskTelemetry:
    """One sweep task's observability, detached from its process."""

    #: Stable task identifier (``workload/policy-digest``).
    task_id: str
    workload: str
    policy: str
    spans: List[Span]
    #: ``(ts, name, value)`` rows sampled by the worker's registry.
    counter_samples: List[Tuple[int, str, float]]
    #: Final counter and gauge values keyed by catalog name.
    values: Dict[str, float]
    #: Histogram name -> ``{bounds, bucket_counts, count, total}``.
    histograms: Dict[str, dict]
    dropped_spans: int = 0
    dropped_events: int = 0
    #: Wall seconds the successful attempt spent simulating.
    wall_seconds: float = 0.0
    #: Serialized size of this telemetry (pipe or spill-file bytes).
    payload_bytes: int = 0
    #: True when the payload crossed the process boundary as a spill
    #: file rather than inline over the pipe.
    spilled: bool = False

    @classmethod
    def from_observation(
        cls,
        task_id: str,
        workload: str,
        policy: str,
        observation,
        dropped_events: int = 0,
        wall_seconds: float = 0.0,
    ) -> "TaskTelemetry":
        """Capture a finished :class:`~repro.obs.run.RunObservation`."""
        registry = observation.registry
        values: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for name in registry.names():
            if registry.spec(name).kind is MetricKind.HISTOGRAM:
                data = registry.histogram(name)
                histograms[name] = {
                    "bounds": list(data.bounds),
                    "bucket_counts": list(data.bucket_counts),
                    "count": data.count,
                    "total": data.total,
                }
            else:
                values[name] = registry.value(name)
        return cls(
            task_id=task_id,
            workload=workload,
            policy=policy,
            spans=list(observation.tracer.spans),
            counter_samples=list(registry.samples),
            values=values,
            histograms=histograms,
            dropped_spans=observation.tracer.dropped,
            dropped_events=dropped_events,
            wall_seconds=wall_seconds,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready view (spill files, tests)."""
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "task_id": self.task_id,
            "workload": self.workload,
            "policy": self.policy,
            "spans": [
                [
                    span.name,
                    span.track,
                    span.start,
                    span.duration,
                    [list(pair) for pair in span.args],
                ]
                for span in self.spans
            ],
            "counter_samples": [
                list(row) for row in self.counter_samples
            ],
            "values": dict(self.values),
            "histograms": self.histograms,
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskTelemetry":
        """Inverse of :meth:`to_dict`; raises on schema drift."""
        version = data.get("schema_version")
        if version != TELEMETRY_SCHEMA_VERSION:
            raise TelemetryError(
                f"telemetry schema {version!r} != current "
                f"{TELEMETRY_SCHEMA_VERSION}"
            )
        return cls(
            task_id=data["task_id"],
            workload=data["workload"],
            policy=data["policy"],
            spans=[
                Span(
                    name=name,
                    track=track,
                    start=start,
                    duration=duration,
                    args=tuple(
                        (key, value) for key, value in args
                    ),
                )
                for name, track, start, duration, args in data["spans"]
            ],
            counter_samples=[
                (ts, name, value)
                for ts, name, value in data["counter_samples"]
            ],
            values=dict(data["values"]),
            histograms=dict(data["histograms"]),
            dropped_spans=data["dropped_spans"],
            dropped_events=data["dropped_events"],
            wall_seconds=data["wall_seconds"],
        )

    def to_payload(self, spill_dir: str | None = None) -> dict:
        """Pipe-sized representation: inline dict or a spill-file ref.

        With ``spill_dir`` set and more than :data:`MAX_INLINE_SPANS`
        spans recorded, the telemetry is written to
        ``<spill_dir>/<task_id with / replaced>.telemetry.json`` and
        only ``{"path": ...}`` crosses the pipe.  Without a spill
        directory everything stays inline regardless of size.
        """
        document = self.to_dict()
        encoded = json.dumps(document, sort_keys=True)
        self.payload_bytes = len(encoded)
        document["payload_bytes"] = self.payload_bytes
        if spill_dir is not None and len(self.spans) > MAX_INLINE_SPANS:
            os.makedirs(spill_dir, exist_ok=True)
            stem = self.task_id.replace("/", "-")
            path = os.path.join(spill_dir, f"{stem}.telemetry.json")
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp, path)
            return {"path": path, "payload_bytes": self.payload_bytes}
        return {"inline": document, "payload_bytes": self.payload_bytes}


def telemetry_from_payload(payload: dict) -> TaskTelemetry:
    """Rehydrate a :meth:`TaskTelemetry.to_payload` value."""
    if not isinstance(payload, dict):
        raise TelemetryError(
            f"telemetry payload is not an object: {payload!r}"
        )
    if "inline" in payload:
        telemetry = TaskTelemetry.from_dict(payload["inline"])
    elif "path" in payload:
        try:
            with open(payload["path"], "r", encoding="utf-8") as handle:
                telemetry = TaskTelemetry.from_dict(json.load(handle))
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise TelemetryError(
                f"cannot load spilled telemetry "
                f"{payload['path']!r}: {exc}"
            ) from exc
        telemetry.spilled = True
    else:
        raise TelemetryError(
            "telemetry payload has neither 'inline' nor 'path'"
        )
    telemetry.payload_bytes = int(payload.get("payload_bytes", 0))
    return telemetry


# ----------------------------------------------------------------------
# sweep-wide merging
# ----------------------------------------------------------------------


def merge_chrome_trace(
    telemetries: Sequence[TaskTelemetry],
    metadata: Dict[str, object] | None = None,
) -> dict:
    """One Chrome trace document spanning every task of a sweep.

    Each task renders as its own process (``pid`` = task order,
    starting at 1; the process name is the task id) with its per-GPU
    ``tid`` tracks intact, so Perfetto shows the whole sweep as
    parallel process rows.  Counter samples keep their task's pid, so
    per-task metric tracks stay separable.
    """
    ordered = sorted(telemetries, key=lambda tel: tel.task_id)
    events: List[dict] = []
    for index, telemetry in enumerate(ordered):
        events.extend(
            trace_events(
                telemetry.spans,
                telemetry.counter_samples,
                pid=index + 1,
                process_name=telemetry.task_id,
            )
        )
    other: Dict[str, object] = {
        "tasks": len(ordered),
        "dropped_spans": sum(tel.dropped_spans for tel in ordered),
        "dropped_events": sum(tel.dropped_events for tel in ordered),
    }
    if metadata:
        other.update(metadata)
    return {
        "displayTimeUnit": "ns",
        "otherData": other,
        "traceEvents": events,
    }


def merge_registry(
    telemetries: Sequence[TaskTelemetry],
) -> MetricsRegistry:
    """Fold per-task registries into one sweep-wide catalog registry.

    Counters accumulate across tasks (final value = sweep total) and
    one sample is recorded per task in task-id order, so the exported
    series reads as the sweep trajectory with ``ts`` = task ordinal.
    Gauges are per-run state, not additive: each sample carries the
    owning task's final gauge values, and the registry's final gauge
    value is simply the last task's (use the series for per-task
    reads).  Histograms merge bucket by bucket.
    """
    registry = build_registry()
    ordered = sorted(telemetries, key=lambda tel: tel.task_id)
    totals: Dict[str, float] = {}
    for index, telemetry in enumerate(ordered):
        for name, value in sorted(telemetry.values.items()):
            spec = registry.spec(name)
            if spec.kind is MetricKind.COUNTER:
                totals[name] = totals.get(name, 0.0) + value
                registry.set_total(name, totals[name])
            else:
                registry.set_gauge(name, value)
        for name, data in sorted(telemetry.histograms.items()):
            merged = registry.histogram(name)
            if list(data["bounds"]) != list(merged.bounds):
                raise TelemetryError(
                    f"histogram {name!r} bounds differ across tasks"
                )
            for slot, count in enumerate(data["bucket_counts"]):
                merged.bucket_counts[slot] += count
            merged.count += data["count"]
            merged.total += data["total"]
        registry.sample(index + 1)
    return registry

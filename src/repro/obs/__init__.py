"""Run-scoped observability: tracing, metrics, and inspection.

Three pillars, all off unless enabled via ``SystemConfig(observe=True)``
or ``GRIT_TRACE=1``:

* :mod:`repro.obs.tracer` — span instrumentation of UVM driver
  operations on per-GPU tracks, in *simulated* cycles, exported as
  Chrome trace-event JSON (opens directly in Perfetto);
* :mod:`repro.obs.metrics` + :mod:`repro.obs.catalog` — a typed
  counter / gauge / histogram registry sampled per interval and
  exported as JSON-lines, CSV, or Prometheus text;
* :mod:`repro.obs.inspect` — page-lifecycle reconstruction from the
  structured event log (the ``grit-repro inspect`` subcommand).

:mod:`repro.obs.profile` (wall-time phase profiling) is deliberately
not re-exported here: it reads the wall clock, which the simulation
core must never do, and it imports the engine — importing it lazily
keeps this package safe to import from :mod:`repro.sim`.
"""

from repro.obs.catalog import build_registry
from repro.obs.inspect import (
    busiest_pages,
    page_lifecycle,
    render_lifecycle,
    scheme_transitions,
)
from repro.obs.metrics import (
    HistogramData,
    MetricKind,
    MetricSpec,
    MetricsRegistry,
)
from repro.obs.run import (
    OBSERVE_ENV_VAR,
    RunObservation,
    observe_enabled,
)
from repro.obs.trace_schema import validate_chrome_trace
from repro.obs.tracer import ENGINE_TRACK, Span, SpanTracer, to_chrome_trace

__all__ = [
    "ENGINE_TRACK",
    "HistogramData",
    "MetricKind",
    "MetricSpec",
    "MetricsRegistry",
    "OBSERVE_ENV_VAR",
    "RunObservation",
    "Span",
    "SpanTracer",
    "build_registry",
    "busiest_pages",
    "observe_enabled",
    "page_lifecycle",
    "render_lifecycle",
    "scheme_transitions",
    "to_chrome_trace",
    "validate_chrome_trace",
]

"""The metric catalogue: every series the observability layer emits.

Each metric is a module-level constant naming one registered series.
Consumers refer to metrics *through these constants* (``catalog.
UVM_MIGRATIONS``), never through string literals — the simlint rule
GRIT-C005 checks that every constant here is referenced somewhere
outside the catalog (an unemitted metric is a lie in the docs) and
that every metric name is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Tuple

from repro.obs.metrics import MetricKind, MetricSpec, MetricsRegistry

# -- counters (cumulative totals pulled from EventCounters) ------------

SIM_ACCESSES = "sim.accesses.total"
SIM_FASTPATH_RUNS = "sim.fastpath.runs.total"
SIM_FASTPATH_ACCESSES = "sim.fastpath.accesses.total"
UVM_LOCAL_FAULTS = "uvm.faults.local.total"
UVM_PROTECTION_FAULTS = "uvm.faults.protection.total"
UVM_MIGRATIONS = "uvm.migrations.total"
UVM_DUPLICATIONS = "uvm.duplications.total"
UVM_WRITE_COLLAPSES = "uvm.write_collapses.total"
UVM_EVICTIONS = "uvm.evictions.total"
UVM_REMOTE_ACCESSES = "uvm.remote_accesses.total"
UVM_PREFETCHES = "uvm.prefetches.total"
UVM_FAULT_BATCHES = "uvm.fault.batches.total"
UVM_COALESCED_FAULTS = "uvm.fault.coalesced.total"
GRIT_SCHEME_CHANGES = "grit.scheme_changes.total"
LINK_WAIT_CYCLES = "interconnect.link.wait_cycles.total"
LINK_BYTES = "interconnect.link.bytes.total"
LINK_MESSAGES = "interconnect.link.messages.total"
SWITCH_WAIT_CYCLES = "interconnect.switch.wait_cycles.total"
SWITCH_MESSAGES = "interconnect.switch.messages.total"
DRAM_WAIT_CYCLES = "memsys.dram.wait_cycles.total"
DRAM_ACCESSES = "memsys.dram.accesses.total"

# -- gauges (point-in-time state sampled per interval) -----------------

UVM_FAULT_QUEUE_DEPTH = "uvm.fault.queue_depth"
PA_CACHE_HIT_RATE = "grit.pa_cache.hit_rate"
TLB_L1_MISS_RATE = "memsys.tlb.l1_miss_rate"
TLB_L2_MISS_RATE = "memsys.tlb.l2_miss_rate"
GRIT_PAGES_ON_TOUCH = "grit.pages.on_touch"
GRIT_PAGES_ACCESS_COUNTER = "grit.pages.access_counter"
GRIT_PAGES_DUPLICATION = "grit.pages.duplication"
LINK_PEAK_OCCUPANCY = "interconnect.link.peak_occupancy"
SWITCH_PEAK_OCCUPANCY = "interconnect.switch.peak_occupancy"
DRAM_PEAK_OCCUPANCY = "memsys.dram.peak_occupancy"

# -- histograms (per-operation cost distributions) ---------------------

UVM_FAULT_SERVICE_CYCLES = "uvm.fault.service_cycles"
UVM_MIGRATION_CYCLES = "uvm.migration.cycles"

# -- harness sweep counters (emitted by the sweep orchestrator, not by
#    the per-run sampler; see repro.harness.orchestrator) --------------

SWEEP_TASKS = "harness.sweep.tasks.total"
SWEEP_COMPLETED = "harness.sweep.completed.total"
SWEEP_RETRIES = "harness.sweep.retries.total"
SWEEP_FAILURES = "harness.sweep.failures.total"
SWEEP_TIMEOUTS = "harness.sweep.timeouts.total"
SWEEP_CRASHES = "harness.sweep.crashes.total"

# -- harness sweep worker-telemetry counters (cross-process
#    observability: what the workers shipped back to the orchestrator;
#    see repro.obs.aggregate) -----------------------------------------

SWEEP_WORKER_SPANS = "harness.sweep.worker.spans.total"
SWEEP_WORKER_DROPPED_SPANS = "harness.sweep.worker.dropped_spans.total"
SWEEP_WORKER_DROPPED_EVENTS = "harness.sweep.worker.dropped_events.total"
SWEEP_WORKER_TELEMETRY_BYTES = "harness.sweep.worker.telemetry_bytes.total"
SWEEP_WORKER_SPILLS = "harness.sweep.worker.spills.total"

# -- perf-trajectory counters (emitted by the repro bench harness; see
#    repro.obs.bench) --------------------------------------------------

BENCH_RUNS = "bench.runs.total"
BENCH_COMPARISONS = "bench.comparisons.total"
BENCH_REGRESSIONS = "bench.regressions.total"


def _counter(
    name: str, description: str, unit: str = "events"
) -> MetricSpec:
    return MetricSpec(name, MetricKind.COUNTER, description, unit=unit)


def _gauge(name: str, description: str, unit: str = "") -> MetricSpec:
    return MetricSpec(name, MetricKind.GAUGE, description, unit=unit)


def _histogram(name: str, description: str) -> MetricSpec:
    return MetricSpec(
        name, MetricKind.HISTOGRAM, description, unit="cycles"
    )


#: Every metric the observability layer registers, in catalog order.
METRICS: Tuple[MetricSpec, ...] = (
    _counter(SIM_ACCESSES, "memory accesses replayed by the engine"),
    _counter(SIM_FASTPATH_RUNS, "steady-state runs priced in bulk by "
             "the vectorized fast path", unit="runs"),
    _counter(SIM_FASTPATH_ACCESSES, "accesses covered by fast-path "
             "runs (the rest went through the scalar pipeline)"),
    _counter(UVM_LOCAL_FAULTS, "local page faults serviced by the driver"),
    _counter(UVM_PROTECTION_FAULTS, "page protection faults (writes to "
             "read-only duplicates)"),
    _counter(UVM_MIGRATIONS, "page migrations performed"),
    _counter(UVM_DUPLICATIONS, "page duplications performed"),
    _counter(UVM_WRITE_COLLAPSES, "write collapses performed"),
    _counter(UVM_EVICTIONS, "DRAM frame evictions under oversubscription"),
    _counter(UVM_REMOTE_ACCESSES, "data accesses served from a remote "
             "node"),
    _counter(UVM_PREFETCHES, "background tree-prefetcher page pulls"),
    _counter(UVM_FAULT_BATCHES, "fault batches drained through the "
             "batched service path"),
    _counter(UVM_COALESCED_FAULTS, "duplicate (gpu, vpn) fault deposits "
             "coalesced away during batch drains"),
    _counter(GRIT_SCHEME_CHANGES, "PTE scheme-bit rewrites (threshold "
             "decisions plus neighbor propagation)"),
    _gauge(UVM_FAULT_QUEUE_DEPTH, "faults that arrived at the host "
           "service queue during the last sample interval", "faults"),
    _gauge(PA_CACHE_HIT_RATE, "PA-Cache hit rate since the start of the "
           "run (GRIT policies only)", "ratio"),
    _gauge(TLB_L1_MISS_RATE, "cumulative L1 TLB miss rate across GPUs",
           "ratio"),
    _gauge(TLB_L2_MISS_RATE, "cumulative L2 TLB miss rate across GPUs",
           "ratio"),
    _gauge(GRIT_PAGES_ON_TOUCH, "pages whose PTE scheme bits currently "
           "say on-touch migration", "pages"),
    _gauge(GRIT_PAGES_ACCESS_COUNTER, "pages whose PTE scheme bits "
           "currently say access-counter migration", "pages"),
    _gauge(GRIT_PAGES_DUPLICATION, "pages whose PTE scheme bits "
           "currently say duplication", "pages"),
    _counter(LINK_WAIT_CYCLES, "cycles charges spent queued behind "
             "earlier link reservations (contention=queued only)",
             "cycles"),
    _counter(LINK_BYTES, "payload bytes moved across every link "
             "(NVLink + PCIe page traffic)", "bytes"),
    _counter(LINK_MESSAGES, "transfers plus control messages carried "
             "by every link", "messages"),
    _counter(SWITCH_WAIT_CYCLES, "cycles charges spent queued on a "
             "switch port or trunk (switched topologies under "
             "contention=queued)", "cycles"),
    _counter(SWITCH_MESSAGES, "transfers plus control messages routed "
             "through any switch port or trunk", "messages"),
    _counter(DRAM_WAIT_CYCLES, "cycles data accesses spent queued on "
             "a busy DRAM channel (contention=queued only)", "cycles"),
    _counter(DRAM_ACCESSES, "data accesses that reserved a DRAM "
             "channel (contention=queued only)", "accesses"),
    _gauge(LINK_PEAK_OCCUPANCY, "largest backlog any link reservation "
           "observed on arrival", "cycles"),
    _gauge(SWITCH_PEAK_OCCUPANCY, "largest backlog any switch port or "
           "trunk reservation observed on arrival", "cycles"),
    _gauge(DRAM_PEAK_OCCUPANCY, "largest backlog any DRAM access "
           "observed on arrival", "cycles"),
    _histogram(UVM_FAULT_SERVICE_CYCLES, "stall cycles charged per "
               "serviced local page fault"),
    _histogram(UVM_MIGRATION_CYCLES, "cycles charged per page "
               "migration"),
)


#: Sweep-orchestrator metrics: registered by
#: :func:`build_sweep_registry`, not per simulated run — a sweep spans
#: many runs, so its counters would only pollute per-run exports.
SWEEP_METRICS: Tuple[MetricSpec, ...] = (
    _counter(
        SWEEP_TASKS, "unique sweep tasks scheduled", unit="tasks"
    ),
    _counter(
        SWEEP_COMPLETED,
        "sweep tasks that produced a result",
        unit="tasks",
    ),
    _counter(
        SWEEP_RETRIES,
        "failed attempts re-enqueued with backoff",
        unit="attempts",
    ),
    _counter(
        SWEEP_FAILURES,
        "sweep tasks that exhausted their retries",
        unit="tasks",
    ),
    _counter(
        SWEEP_TIMEOUTS,
        "attempts killed for exceeding the per-task timeout",
        unit="attempts",
    ),
    _counter(
        SWEEP_CRASHES,
        "worker processes that died without reporting a result",
        unit="attempts",
    ),
    _counter(
        SWEEP_WORKER_SPANS,
        "spans collected from worker telemetry payloads",
        unit="spans",
    ),
    _counter(
        SWEEP_WORKER_DROPPED_SPANS,
        "spans worker tracers dropped past capacity",
        unit="spans",
    ),
    _counter(
        SWEEP_WORKER_DROPPED_EVENTS,
        "machine events worker event logs dropped past capacity",
    ),
    _counter(
        SWEEP_WORKER_TELEMETRY_BYTES,
        "serialized telemetry bytes shipped over the result pipe "
        "or spilled to artifact files",
        unit="bytes",
    ),
    _counter(
        SWEEP_WORKER_SPILLS,
        "telemetry payloads too large for the pipe, spilled to "
        "artifact files instead",
        unit="payloads",
    ),
)


#: Perf-trajectory metrics: registered by :func:`build_bench_registry`
#: for ``repro bench`` runs (wall-clock domain, never per simulated
#: run).
BENCH_METRICS: Tuple[MetricSpec, ...] = (
    _counter(
        BENCH_RUNS, "benchmark case repetitions executed", unit="runs"
    ),
    _counter(
        BENCH_COMPARISONS,
        "benchmark cases compared against a baseline",
        unit="cases",
    ),
    _counter(
        BENCH_REGRESSIONS,
        "regressions flagged by the perf-trajectory gate",
        unit="findings",
    ),
)


def build_registry() -> MetricsRegistry:
    """A fresh registry with the whole per-run catalogue registered."""
    registry = MetricsRegistry()
    for spec in METRICS:
        registry.register(spec)
    return registry


def build_sweep_registry() -> MetricsRegistry:
    """A fresh registry with the sweep-orchestrator metrics."""
    registry = MetricsRegistry()
    for spec in SWEEP_METRICS:
        registry.register(spec)
    return registry


def build_bench_registry() -> MetricsRegistry:
    """A fresh registry with the perf-trajectory (bench) metrics."""
    registry = MetricsRegistry()
    for spec in BENCH_METRICS:
        registry.register(spec)
    return registry

"""Quickstart: compare page placement schemes on one workload.

Runs GEMM on the baseline 4-GPU system under every uniform placement
scheme plus GRIT and the Ideal bound, and prints the paper-style
normalized performance table.

Usage::

    python examples/quickstart.py [workload] [scale]
"""

from __future__ import annotations

import sys

from repro import make_policy, make_workload, simulate
from repro.config import BASELINE_CONFIG

POLICIES = ["on_touch", "access_counter", "duplication", "grit", "ideal"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    print(f"Simulating {workload!r} on {BASELINE_CONFIG.num_gpus} GPUs")
    print(f"(page size {BASELINE_CONFIG.page_size} B, scale {scale})\n")

    baseline = None
    rows = []
    for name in POLICIES:
        trace = make_workload(workload, scale=scale)
        result = simulate(BASELINE_CONFIG, trace, make_policy(name))
        if baseline is None:
            baseline = result
        rows.append((name, result))

    header = (
        f"{'policy':<16} {'cycles':>14} {'speedup':>8} "
        f"{'faults':>8} {'migrations':>11} {'collapses':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, result in rows:
        print(
            f"{name:<16} {result.total_cycles:>14,} "
            f"{result.speedup_over(baseline):>7.2f}x "
            f"{result.counters.total_faults:>8} "
            f"{result.counters.migrations:>11} "
            f"{result.counters.write_collapses:>10}"
        )

    grit = dict(rows)["grit"]
    print("\nGRIT scheme usage (share of L2-TLB-missing accesses):")
    for scheme, fraction in grit.counters.scheme_usage_fractions().items():
        print(f"  {scheme:>3}: {fraction:6.1%}")


if __name__ == "__main__":
    main()

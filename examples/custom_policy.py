"""Writing a custom placement policy against the public API.

Implements an *oracle profile-guided* policy: it pre-characterizes the
trace (like an offline profiling run), assigns each page the scheme
Table III recommends for its whole-run attributes, and lets the UVM
driver's mechanics do the rest.  Then it races the oracle against GRIT
— GRIT learns online what the oracle was told offline, so the oracle is
an upper bound on what attribute-driven selection can achieve.

Usage::

    python examples/custom_policy.py [workload] [scale]
"""

from __future__ import annotations

import sys
from typing import Dict

from repro import make_policy, make_workload, simulate
from repro.config import BASELINE_CONFIG
from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy, SCHEME_MECHANIC
from repro.stats.sharing import PageAccessLedger
from repro.workloads.base import WorkloadTrace


class OraclePolicy(PlacementPolicy):
    """Profile-guided static scheme assignment (Table III applied
    offline): read-only shared pages duplicate, read-write shared pages
    use access counters, private pages migrate on touch."""

    name = "oracle"

    def __init__(self, trace: WorkloadTrace) -> None:
        super().__init__()
        self._schemes: Dict[int, Scheme] = {}
        ledger = PageAccessLedger()
        for gpu, vpn, is_write in trace.iter_all():
            ledger.record(gpu, vpn, is_write)
        for vpn in range(trace.footprint_pages):
            entry = ledger.entry(vpn)
            if entry is None or not entry.is_shared:
                self._schemes[vpn] = Scheme.ON_TOUCH
            elif entry.is_read_write:
                self._schemes[vpn] = Scheme.ACCESS_COUNTER
            else:
                self._schemes[vpn] = Scheme.DUPLICATION

    def initial_scheme(self) -> Scheme:
        return Scheme.ON_TOUCH

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        scheme = self._schemes.get(page.vpn, Scheme.ON_TOUCH)
        if page.scheme != scheme:
            page.scheme = scheme  # keep the PTE scheme bits honest
        return SCHEME_MECHANIC[scheme]

    def describe(self) -> str:
        return "oracle: whole-run Table III attributes, assigned offline"


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "st"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    trace = make_workload(workload, scale=scale)
    baseline = simulate(BASELINE_CONFIG, trace, make_policy("on_touch"))

    oracle = simulate(
        BASELINE_CONFIG,
        make_workload(workload, scale=scale),
        OraclePolicy(trace),
    )
    grit = simulate(
        BASELINE_CONFIG, make_workload(workload, scale=scale), make_policy("grit")
    )

    print(f"{workload}: normalized to on-touch migration")
    print(f"  oracle (offline Table III): {oracle.speedup_over(baseline):5.2f}x")
    print(f"  GRIT   (online learning):   {grit.speedup_over(baseline):5.2f}x")
    gap = grit.total_cycles / oracle.total_cycles
    print(f"  GRIT runtime vs oracle:     {gap:5.2f}x")
    print(
        "\nGRIT's gap to the oracle is its learning cost: the faults "
        "spent before the PA-Table reaches each page's threshold, minus "
        "what Neighboring-Aware Prediction recovers — and GRIT can beat "
        "the oracle when a page's best scheme changes mid-run."
    )


if __name__ == "__main__":
    main()

"""Multi-GPU DNN model-parallel training study (Figure 31).

Builds VGG16 and ResNet18 model-parallel training traces (forward
activations and backward gradients flow between pipeline-adjacent GPUs;
weights stay put) and measures GRIT against the three uniform schemes.

Usage::

    python examples/dnn_training.py [scale]
"""

from __future__ import annotations

import sys

from repro import make_policy, make_workload, simulate
from repro.config import BASELINE_CONFIG

POLICIES = ["on_touch", "access_counter", "duplication", "grit"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    for model in ("vgg16", "resnet18"):
        trace = make_workload(model, scale=scale)
        layers = trace.metadata["layers"]
        assignment = trace.metadata["assignment"]
        print(f"=== {model} ({trace.total_accesses:,} accesses) ===")
        print(
            "  layer placement: "
            + ", ".join(
                f"{layer}->GPU{gpu}" for layer, gpu in zip(layers, assignment)
            )
        )
        baseline = None
        for name in POLICIES:
            result = simulate(
                BASELINE_CONFIG,
                make_workload(model, scale=scale),
                make_policy(name),
            )
            if baseline is None:
                baseline = result
            print(
                f"  {name:<16} {result.speedup_over(baseline):5.2f}x "
                f"(faults {result.counters.total_faults:,}, "
                f"migrations {result.counters.migrations:,})"
            )
        print()
    print(
        "GRIT's DNN gains come from handling the producer-consumer "
        "activation/gradient pages without on-touch's ping-pong."
    )


if __name__ == "__main__":
    main()

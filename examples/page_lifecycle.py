"""Tracing one page's lifecycle through the event log.

Attaches a structured event log to a simulation and replays everything
that happened to the most eventful page: faults, migrations,
duplications, collapses, evictions, and — under GRIT — scheme changes.
This is the simulated-behaviour counterpart of the paper's Figure 5/10
per-page timelines.

Usage::

    python examples/page_lifecycle.py [workload] [policy] [scale]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import make_policy, make_workload
from repro.config import BASELINE_CONFIG
from repro.constants import Scheme
from repro.sim import Engine
from repro.stats.events import EventKind, EventLog


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "st"
    policy = sys.argv[2] if len(sys.argv) > 2 else "grit"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.15

    log = EventLog()
    trace = make_workload(workload, scale=scale)
    engine = Engine(
        BASELINE_CONFIG, trace, make_policy(policy), event_log=log
    )
    result = engine.run()

    print(f"{workload} under {policy}: {len(log):,} events\n")
    print("Event totals:")
    for kind, count in sorted(log.counts().items()):
        if count:
            print(f"  {kind:<18} {count:>8,}")

    # Pick the page with the most events and replay its story.
    tallies = Counter(event.vpn for event in log)
    if not tallies:
        print("\nNo events logged (nothing faulted).")
        return
    vpn, events = tallies.most_common(1)[0]
    print(f"\nBusiest page: vpn {vpn} ({events} events).  Lifecycle:")
    shown = 0
    for event in log.page_history(vpn):
        if shown >= 25:
            print("  ... (truncated)")
            break
        detail = ""
        if event.kind is EventKind.MIGRATION:
            src = "host" if event.gpu < 0 else f"GPU{event.gpu}"
            detail = f"{src} -> GPU{event.detail}"
        elif event.kind is EventKind.SCHEME_CHANGE:
            detail = f"-> {Scheme(event.detail).short_name}"
        elif event.kind is EventKind.WRITE_COLLAPSE:
            detail = f"{event.detail} holders invalidated"
        elif event.kind in (EventKind.LOCAL_FAULT, EventKind.PROTECTION_FAULT):
            detail = f"by GPU{event.gpu}"
        print(
            f"  {event.kind.value:<18} {detail:<28}"
            f" {event.cycles:>7,} cycles"
        )
        shown += 1

    print(
        f"\nRun total: {result.total_cycles:,} cycles, "
        f"{result.counters.total_faults:,} faults."
    )


if __name__ == "__main__":
    main()

"""Oversubscription study: how DRAM capacity shifts the scheme tradeoffs.

Table I fixes GPU DRAM at 70% of the application footprint to model
oversubscription.  This study sweeps that fraction and shows the
mechanism behind two of the paper's observations: duplication's
replicas are what overflow the frames (Section II-B3), and GPS's
subscribe-everything behaviour amplifies the same pressure
(Section VI-C2).

Usage::

    python examples/oversubscription_study.py [workload] [scale]
"""

from __future__ import annotations

import dataclasses
import sys

from repro import make_policy, make_workload, simulate
from repro.config import SystemConfig

POLICIES = ["on_touch", "access_counter", "duplication", "gps", "grit"]
FRACTIONS = [0.4, 0.55, 0.7, 0.85, 1.0]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    print(f"{workload}: speedup over on-touch at each DRAM capacity\n")
    header = f"{'capacity':<10}" + "".join(f"{p:>16}" for p in POLICIES[1:])
    print(header)
    print("-" * len(header))
    for fraction in FRACTIONS:
        config = SystemConfig(dram_footprint_fraction=fraction)
        base = simulate(
            config, make_workload(workload, scale=scale), make_policy("on_touch")
        )
        cells = []
        for name in POLICIES[1:]:
            result = simulate(
                config,
                make_workload(workload, scale=scale),
                make_policy(name),
            )
            evictions = result.counters.evictions
            cells.append(
                f"{result.speedup_over(base):5.2f}x ev={evictions:<5}"
            )
        print(f"{fraction:<10.0%}" + "".join(f"{c:>16}" for c in cells))

    print(
        "\nAs capacity shrinks, duplication and GPS lose ground first: "
        "their replicas are what overflow the frame budget, and each "
        "eviction costs a refault + re-duplication.  Access-counter "
        "migration is nearly capacity-immune (pages stay in host "
        "memory) but pays per-access remote latency instead.  GRIT "
        "replicates only pages that crossed the fault threshold, which "
        "is why the paper measures 34% less oversubscription than GPS."
    )


if __name__ == "__main__":
    main()

"""Sensitivity sweeps: fault threshold, GPU count, and page size.

Reproduces the Section VI-B studies as one script: GRIT's speedup over
on-touch as a function of the fault threshold (Figure 21), the number of
GPUs (Figures 22-24), and the page size (Figure 25's mechanism at a
reduced fold).

Usage::

    python examples/sensitivity_sweep.py [scale]
"""

from __future__ import annotations

import sys

from repro.harness.experiment import ExperimentRunner, PAPER_APPS, geometric_mean


def sweep(runner: ExperimentRunner, label: str, **overrides: object) -> float:
    speedups = [
        runner.speedup(app, "grit", "on_touch", **overrides)
        for app in PAPER_APPS
    ]
    mean = geometric_mean(speedups)
    print(f"  {label:<24} {mean:5.2f}x over on-touch")
    return mean


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    runner = ExperimentRunner(scale=scale)

    print("Fault threshold (Figure 21; paper peaks at 4):")
    results = {
        threshold: sweep(
            runner, f"threshold={threshold}", fault_threshold=threshold
        )
        for threshold in (2, 4, 8, 16)
    }
    best = max(results, key=results.get)
    print(f"  -> best threshold here: {best}\n")

    print("GPU count (Figures 22-24; same input size per count):")
    for gpus in (2, 4, 8, 16):
        sweep(runner, f"{gpus} GPUs", num_gpus=gpus)
    print()

    print("Page size (Figure 25's false-sharing effect):")
    sweep(runner, "4 KB pages")
    sweep(
        runner,
        "64 KB pages, 4x input",
        page_size=16 * 4096,
        scale=max(1.0, scale * 4),
    )
    print(
        "\nLarger pages merge pages with different attributes, which "
        "forces GRIT toward access-counter migration for mixed pages."
    )


if __name__ == "__main__":
    main()

"""Section IV-style workload characterization, without simulation.

Reproduces the paper's motivation analysis for any registered workload:
the private/shared and read/read-write splits (Figures 4 and 9), the
PC-shared vs all-shared classification of shared pages (Figure 5), and
the neighboring-page attribute agreement that justifies
Neighboring-Aware Prediction (Figures 6-8).

Usage::

    python examples/characterize_workload.py [workload] [scale]
"""

from __future__ import annotations

import sys

from repro import make_workload
from repro.analysis import (
    attribute_map,
    build_timeline,
    classify_shared_pages,
    sharing_summary,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "st"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    trace = make_workload(workload, scale=scale)

    print(f"=== {workload}: {trace.total_accesses:,} accesses over "
          f"{trace.footprint_pages:,} pages ===\n")

    summary = sharing_summary(trace)
    print("Sharing (Figure 4):")
    print(f"  private pages   {summary.private_page_fraction:6.1%}")
    print(f"  shared pages    {summary.shared_page_fraction:6.1%}")
    print(f"  accesses to private pages {summary.private_access_fraction:6.1%}")
    print("\nRead/write (Figure 9):")
    print(f"  read-only pages {summary.read_page_fraction:6.1%}")
    print(f"  accesses to read-only pages {summary.read_access_fraction:6.1%}")

    timeline = build_timeline(trace, num_intervals=32)
    classes = classify_shared_pages(timeline)
    total = len(classes["pc_shared"]) + len(classes["all_shared"])
    print("\nShared-page behaviour over time (Figure 5):")
    print(f"  PC-shared pages  {len(classes['pc_shared']):6d}")
    print(f"  all-shared pages {len(classes['all_shared']):6d}")
    if total:
        print(f"  PC fraction      {len(classes['pc_shared']) / total:6.1%}")

    amap = attribute_map(trace, num_intervals=20)
    print("\nNeighboring-page attribute agreement (Figures 6-8):")
    print(f"  private/shared axis {amap.neighbor_agreement(amap.sharing):6.1%}")
    print(f"  read/read-write axis {amap.neighbor_agreement(amap.read_write):6.1%}")
    print(
        "\nHigh agreement is what lets GRIT's Neighboring-Aware "
        "Prediction pre-set scheme bits for adjacent pages."
    )


if __name__ == "__main__":
    main()

"""Driving the simulator with an external trace file.

Round-trips a trace through the on-disk ``.npz`` format — the interface
any external tool (a profiler, another simulator, a custom script) uses
to feed this library — then compares placement policies on it.  As the
"external tool" this script synthesizes a two-phase trace by hand with
raw numpy, without using the built-in generators.

Usage::

    python examples/external_trace.py [path.npz]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro import make_policy, simulate
from repro.config import BASELINE_CONFIG
from repro.workloads.base import WorkloadTrace
from repro.workloads.trace_io import load_trace, save_trace

NUM_GPUS = 4
PAGES = 256


def build_external_trace() -> WorkloadTrace:
    """What an external tool would produce: raw per-GPU VPN arrays."""
    rng = np.random.default_rng(2024)
    streams = []
    shared = np.arange(0, PAGES // 4)          # hot read-shared table
    for gpu in range(NUM_GPUS):
        private = np.arange(                    # per-GPU scratch
            PAGES // 2 + gpu * 32, PAGES // 2 + (gpu + 1) * 32
        )
        phase1 = np.repeat(rng.choice(shared, size=700), 4)  # lookups
        phase2 = np.repeat(private, 40)                 # scratch sweeps
        vpns = np.concatenate([phase1, phase2]).astype(np.int64)
        writes = np.concatenate(
            [
                np.zeros(len(phase1), dtype=bool),      # reads
                rng.random(len(phase2)) < 0.5,          # read-modify-write
            ]
        )
        streams.append((vpns, writes))
    return WorkloadTrace(
        name="external_demo",
        num_gpus=NUM_GPUS,
        footprint_pages=PAGES,
        streams=streams,
        metadata={"source": "examples/external_trace.py"},
    )


def main() -> None:
    path = (
        sys.argv[1]
        if len(sys.argv) > 1
        else tempfile.mktemp(suffix=".npz", prefix="external_trace_")
    )
    save_trace(build_external_trace(), path)
    print(f"wrote external trace to {path}")

    trace = load_trace(path)
    print(
        f"loaded: {trace.total_accesses:,} accesses over "
        f"{trace.footprint_pages} pages on {trace.num_gpus} GPUs\n"
    )
    baseline = None
    for name in ("on_touch", "access_counter", "duplication", "grit"):
        result = simulate(BASELINE_CONFIG, load_trace(path), make_policy(name))
        if baseline is None:
            baseline = result
        print(
            f"  {name:<16} {result.speedup_over(baseline):5.2f}x "
            f"(faults {result.counters.total_faults:,})"
        )
    print(
        "\nThe shared lookup table wants duplication; the read-write "
        "scratch wants on-touch — GRIT mixes both, which is why it "
        "tracks the best of the uniform schemes here."
    )


if __name__ == "__main__":
    main()
